//! Evaluating one fault plan against one scenario — and replaying the
//! resulting artifacts.
//!
//! [`run_plan`] is the single execution path every caller shares (sweeps,
//! shrinking, the CLI replayer): seed → inputs, plan → failure pattern and
//! fault wrapper, recorded schedule → violations. Because every ingredient
//! is deterministic, [`replay`] can re-execute a serialized
//! [`Violation`] from its JSON artifact alone and report whether it still
//! reproduces.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use wfa_core::harness::{EfdRun, RunReport};
use wfa_fd::pattern::FailurePattern;
use wfa_gossip::backend::GossipBackend;
use wfa_gossip::config::GossipConfig;
use wfa_kernel::backend::DegradationKind;
use wfa_kernel::sched::{Record, Replay, Starve};
use wfa_kernel::value::Pid;
use wfa_net::abd::{sharded_backend, AbdBackend};
use wfa_net::config::{NetConfig, ShardMap};
use wfa_obs::metrics::{HistKind, MetricsHandle};

use crate::fdwrap::FaultyFdGen;
use crate::plan::FaultPlan;
use crate::scenario::Scenario;
use crate::violation::{Violation, ViolationKind};

/// Everything one plan evaluation produced.
#[derive(Clone, Debug)]
pub struct PlanOutcome {
    /// The run report (inputs, outputs, Δ-verdict, step counts).
    pub report: RunReport,
    /// The full recorded schedule.
    pub schedule: Vec<Pid>,
    /// The violations found (unshrunk; empty on a clean pass).
    pub violations: Vec<Violation>,
}

/// The deterministic participant set: the first `max_participants` C-indices.
pub fn participants(sc: &Scenario) -> Vec<bool> {
    let max_p = sc.task.max_participants().min(sc.n);
    (0..sc.task.arity()).map(|i| i < max_p).collect()
}

/// The deterministic input vector for `seed`.
pub fn inputs_for(sc: &Scenario, seed: u64) -> Vec<wfa_kernel::value::Value> {
    let mut rng = SmallRng::seed_from_u64(seed);
    sc.task.sample_inputs(&participants(sc), &mut rng)
}

/// Assembles the faulted run for `(plan, seed)`.
///
/// # Panics
///
/// Panics if the plan crashes every S-process — the EFD model requires at
/// least one correct one, and [`crate::sweep::PlanSearch`] never emits such
/// plans; hitting this is a caller bug, not a finding.
pub fn build_run(
    sc: &Scenario,
    plan: &FaultPlan,
    seed: u64,
) -> (EfdRun<FaultyFdGen>, Vec<wfa_kernel::value::Value>) {
    let input = inputs_for(sc, seed);
    let crashed: Vec<usize> = plan.crashes.iter().map(|(q, _)| *q).collect();
    assert!(
        (0..sc.n).any(|q| !crashed.contains(&q)),
        "fault plan crashes all {n} S-processes; the model needs a correct one",
        n = sc.n
    );
    let pattern = FailurePattern::with_crashes(sc.n, &plan.crashes);
    let inner = (sc.mk_fd)(pattern, sc.stab, seed);
    let (c_procs, s_procs) = (sc.factory)(&input, inner.clone());
    let fd = FaultyFdGen::new(inner, plan);
    let mut run = EfdRun::new(c_procs, s_procs, fd);
    if sc.net_nodes > 0 {
        // The same seed derivation the CLI uses (`--backend net`), so a
        // violation artifact replays the identical network.
        let mut cfg = NetConfig::new(sc.net_nodes, seed ^ 0x7e7);
        cfg.faults = plan.net_faults.clone();
        cfg.fifo = sc.net_fifo;
        cfg.batch_max = sc.net_batch;
        cfg.corrupt_every = sc.net_corrupt;
        if sc.net_gossip {
            // Same network, different substrate: ops are replica-local and
            // the plan's faults bite the anti-entropy exchanges instead of
            // quorum rounds (batching/sharding knobs don't apply).
            run = run.with_backend(Box::new(GossipBackend::new(GossipConfig {
                net: cfg,
                ..GossipConfig::new(sc.net_nodes, seed ^ 0x7e7)
            })));
        } else if sc.net_shards > 1 {
            // One independent ABD cluster per replica group; keys route by
            // `RegKey::shard_index` and faults replicate per group.
            let map = ShardMap::new(sc.net_shards, sc.net_nodes);
            run = run.with_backend(Box::new(sharded_backend(&cfg, &map)));
        } else {
            run = run.with_backend(Box::new(AbdBackend::new(cfg)));
        }
    }
    (run, input)
}

/// Evaluates one plan: runs the faulted system under a seeded fair schedule
/// with the plan's `Starve` stops, records the schedule, and checks safety
/// always and wait-freedom when the plan is eventually clean.
pub fn run_plan(sc: &Scenario, plan: &FaultPlan, seed: u64) -> PlanOutcome {
    run_plan_observed(sc, plan, seed, &MetricsHandle::disabled())
}

/// [`run_plan`] with observability: kernel and harness counters flow into
/// `obs` through the run's executor, and the recorded schedule length is
/// observed into the `plan_cost` histogram.
pub fn run_plan_observed(
    sc: &Scenario,
    plan: &FaultPlan,
    seed: u64,
    obs: &MetricsHandle,
) -> PlanOutcome {
    let (run, input) = build_run(sc, plan, seed);
    let mut run = run.with_metrics(obs.clone());
    let stops: Vec<(Pid, u64)> = plan.stops.iter().map(|(i, t)| (run.roles.c(*i), *t)).collect();
    let base = run.fair_sched(seed ^ 0xdead);
    let mut sched = Record::new(Starve::new(base, stops));
    // Chunked run with early exit once every C-process the adversary lets
    // run has decided — keeps recorded schedules (and thus violation
    // artifacts) short instead of always exhausting the budget.
    let parts = participants(sc);
    let stopped_c: Vec<usize> = plan.stops.iter().map(|(i, _)| *i).collect();
    let expected: Vec<Pid> = parts
        .iter()
        .enumerate()
        .filter(|(i, p)| **p && !stopped_c.contains(i))
        .map(|(i, _)| run.roles.c(i))
        .collect();
    let chunk = 64;
    let mut used = 0;
    let mut stop = wfa_kernel::sched::StopReason::BudgetExhausted;
    while used < sc.budget {
        let step = chunk.min(sc.budget - used);
        stop = run.run(&mut sched, step);
        used += step;
        let undecided = run.undecided();
        if expected.iter().all(|p| !undecided.contains(p)) {
            break;
        }
    }
    let report = RunReport::evaluate(&run, sc.task.as_ref(), &input, stop);
    let schedule = sched.into_log();
    obs.observe(HistKind::PlanCost, schedule.len() as u64);

    let mut violations = Vec::new();
    let mk = |kind: ViolationKind| Violation {
        scenario: sc.name.clone(),
        seed,
        plan: plan.clone(),
        kind,
        schedule: schedule.iter().map(|p| p.0).collect(),
        original_len: schedule.len(),
    };
    // Degradations the backend raised through the seam — quorum loss from
    // ABD, stale advice from gossip — become first-class, replayable
    // violations instead of panic isolation. Only the first is recorded —
    // every later one is the same degraded spell re-probing (a long run
    // would otherwise drown the report).
    if let Some(d) = run.executor.degradations().first() {
        violations.push(mk(match d.kind {
            DegradationKind::QuorumLost => ViolationKind::QuorumLost {
                op: d.op.clone(),
                tick: d.tick,
                answered: d.answered,
                needed: d.needed,
                shard: d.shard,
            },
            DegradationKind::AdviceStale => ViolationKind::AdviceStale {
                op: d.op.clone(),
                tick: d.tick,
                answered: d.answered,
                needed: d.needed,
                shard: d.shard,
            },
        }));
    }
    if let Err(e) = report.validate() {
        violations.push(mk(ViolationKind::Safety { reason: e.violation.reason.clone() }));
    }
    if plan.preserves_liveness() {
        for (i, part) in parts.iter().enumerate() {
            if *part && !stopped_c.contains(&i) && report.output[i].is_unit() {
                violations.push(mk(ViolationKind::WaitFreedom {
                    process: i,
                    steps: report.c_steps[i],
                }));
            }
        }
    }
    PlanOutcome { report, schedule, violations }
}

/// Re-executes `(plan, seed)` under a fixed schedule and reports the result.
pub fn replay_report(sc: &Scenario, plan: &FaultPlan, seed: u64, schedule: &[Pid]) -> RunReport {
    let (mut run, input) = build_run(sc, plan, seed);
    let mut sched = Replay::new(schedule.to_vec());
    let stop = run.run(&mut sched, schedule.len() as u64 + 1);
    RunReport::evaluate(&run, sc.task.as_ref(), &input, stop)
}

/// The result of replaying a serialized violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReplayVerdict {
    /// `true` iff the artifact still reproduces its violation.
    pub reproduced: bool,
    /// Human-readable evidence (the re-observed reason / starver / payload).
    pub detail: String,
}

/// Replays a [`Violation`] artifact from scratch.
///
/// * `Safety` — re-runs the stored schedule and re-validates Δ.
/// * `WaitFreedom` — re-runs the full plan (schedules below the budget
///   starve trivially, so the stored schedule alone cannot certify it).
/// * `QuorumLost` — re-runs the full plan and matches the first raised
///   degradation's `(op, tick)`.
/// * `AdviceStale` — same discipline as `QuorumLost`: re-runs the full plan
///   and matches the first stale-advice report's `(op, tick)`.
/// * `Panic` — re-runs the full plan under `catch_unwind`.
///
/// # Errors
///
/// Returns an error if the scenario name is unknown.
pub fn replay(v: &Violation) -> Result<ReplayVerdict, String> {
    let sc = Scenario::by_name(&v.scenario)
        .ok_or_else(|| format!("unknown scenario `{}`", v.scenario))?;
    Ok(match &v.kind {
        ViolationKind::Safety { reason } => {
            let report = replay_report(&sc, &v.plan, v.seed, &v.schedule_pids());
            match report.validate() {
                Err(e) => ReplayVerdict {
                    reproduced: e.violation.reason == *reason,
                    detail: format!("re-observed: {}", e.violation.reason),
                },
                Ok(()) => {
                    ReplayVerdict { reproduced: false, detail: "run validated cleanly".into() }
                }
            }
        }
        ViolationKind::WaitFreedom { process, .. } => {
            let outcome = run_plan(&sc, &v.plan, v.seed);
            let hit = outcome.violations.iter().find_map(|w| match &w.kind {
                ViolationKind::WaitFreedom { process: p, steps } if p == process => Some(*steps),
                _ => None,
            });
            match hit {
                Some(steps) => ReplayVerdict {
                    reproduced: true,
                    detail: format!("C{process} starved again after {steps} steps"),
                },
                None => ReplayVerdict {
                    reproduced: false,
                    detail: format!("C{process} decided this time"),
                },
            }
        }
        ViolationKind::QuorumLost { op, tick, .. } => {
            let outcome = run_plan(&sc, &v.plan, v.seed);
            let hit = outcome.violations.iter().find_map(|w| match &w.kind {
                ViolationKind::QuorumLost { op: o, tick: t, answered, needed, .. }
                    if o == op && t == tick =>
                {
                    Some((*answered, *needed))
                }
                _ => None,
            });
            match hit {
                Some((answered, needed)) => ReplayVerdict {
                    reproduced: true,
                    detail: format!(
                        "quorum lost again: op={op} tick={tick} answered={answered}/{needed}"
                    ),
                },
                None => ReplayVerdict {
                    reproduced: false,
                    detail: format!("no {op} quorum loss at tick {tick} this time"),
                },
            }
        }
        ViolationKind::AdviceStale { op, tick, .. } => {
            let outcome = run_plan(&sc, &v.plan, v.seed);
            let hit = outcome.violations.iter().find_map(|w| match &w.kind {
                ViolationKind::AdviceStale { op: o, tick: t, answered, needed, .. }
                    if o == op && t == tick =>
                {
                    Some((*answered, *needed))
                }
                _ => None,
            });
            match hit {
                Some((answered, needed)) => ReplayVerdict {
                    reproduced: true,
                    detail: format!(
                        "advice stale again: op={op} tick={tick} dry={answered}/{needed}"
                    ),
                },
                None => ReplayVerdict {
                    reproduced: false,
                    detail: format!("no {op} staleness at tick {tick} this time"),
                },
            }
        }
        ViolationKind::Panic { .. } => {
            let result = catch_unwind(AssertUnwindSafe(|| run_plan(&sc, &v.plan, v.seed)));
            match result {
                Err(payload) => ReplayVerdict {
                    reproduced: true,
                    detail: format!("panicked again: {}", payload_string(payload.as_ref())),
                },
                Ok(_) => ReplayVerdict { reproduced: false, detail: "no panic this time".into() },
            }
        }
    })
}

/// Stringifies a `catch_unwind` payload (panics carry `&str` or `String`).
pub fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plans_pass_canonical_scenarios() {
        for name in ["adopt-commit", "ksa", "renaming", "wait-for-all"] {
            let sc = Scenario::by_name(name).unwrap();
            let outcome = run_plan(&sc, &FaultPlan::clean(), 5);
            assert!(
                outcome.violations.is_empty(),
                "{name}: {:?}",
                outcome.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
            );
            assert!(outcome.report.verdict.is_ok());
        }
    }

    #[test]
    fn run_plan_is_deterministic() {
        let sc = Scenario::fragile_commit();
        let plan = FaultPlan::clean().stop_c(2, 0);
        let a = run_plan(&sc, &plan, 11);
        let b = run_plan(&sc, &plan, 11);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.report.output, b.report.output);
    }

    #[test]
    fn fragile_commit_violates_under_some_seed() {
        let sc = Scenario::fragile_commit();
        let found = (0..40).any(|seed| {
            !run_plan(&sc, &FaultPlan::clean(), seed).violations.is_empty()
        });
        assert!(found, "no seed in 0..40 exposed the fragile commit race");
    }

    #[test]
    fn replayed_schedule_reproduces_the_report() {
        let sc = Scenario::fragile_commit();
        for seed in 0..40 {
            let outcome = run_plan(&sc, &FaultPlan::clean(), seed);
            if outcome.violations.is_empty() {
                continue;
            }
            let replayed = replay_report(&sc, &FaultPlan::clean(), seed, &outcome.schedule);
            assert_eq!(replayed.output, outcome.report.output, "seed {seed}");
            assert_eq!(replayed.verdict, outcome.report.verdict, "seed {seed}");
            return;
        }
        panic!("no violating seed found");
    }

    #[test]
    fn crash_plans_keep_ksa_wait_free() {
        // Crashing S-processes (≤ n−1 of them) probes the algorithm under
        // the patterns its detector is specified for: no violations.
        let sc = Scenario::ksa();
        for (q, t) in [(0usize, 0u64), (1, 25), (2, 80)] {
            let outcome = run_plan(&sc, &FaultPlan::clean().crash_s(q, t), 3);
            assert!(
                outcome.violations.is_empty(),
                "crash({q}@{t}): {:?}",
                outcome.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn clean_and_minority_fault_plans_pass_over_the_net_backend() {
        // The net-backed ksa scenario decides like the shm one under the
        // clean plan and under majority-safe network faults (one replica
        // partitioned away, a bounded drop window: quorums stay reachable).
        let sc = Scenario::ksa_net();
        for plan in [
            FaultPlan::clean(),
            FaultPlan::clean().partition(vec![0], sc.stab),
            FaultPlan::clean().drop_link(1, 0, sc.stab),
            FaultPlan::clean().partition(vec![2], 0).heal(sc.stab),
        ] {
            assert!(plan.net_majority_safe(sc.net_nodes), "{}", plan.describe());
            let outcome = run_plan(&sc, &plan, 5);
            assert!(
                outcome.violations.is_empty(),
                "{}: {:?}",
                plan.describe(),
                outcome.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
            );
            assert!(outcome.report.verdict.is_ok());
        }
    }

    #[test]
    fn net_and_shm_ksa_agree_on_outputs() {
        let shm = run_plan(&Scenario::ksa(), &FaultPlan::clean(), 9);
        let net = run_plan(&Scenario::ksa_net(), &FaultPlan::clean(), 9);
        assert_eq!(shm.report.output, net.report.output);
        assert_eq!(shm.schedule, net.schedule);
    }

    #[test]
    fn batched_scenario_reproduces_unbatched_outcomes() {
        // Batching is a message-economy change only: `ksa-net-batch` must
        // decide the same values on the same schedules as `ksa-net` for
        // every plan and seed, and degrade whenever `ksa-net` degrades
        // (the stranded phase is named `batch` instead of a per-op phase,
        // but the quorum-loss observation itself is preserved).
        let plain = Scenario::ksa_net();
        let batched = Scenario::ksa_net_batch();
        assert_eq!(batched.net_batch, 4);
        for plan in [
            FaultPlan::clean(),
            FaultPlan::clean().drop_link(1, 0, plain.stab),
            FaultPlan::clean().partition(vec![0, 1], 0), // majority-breaking
        ] {
            for seed in [3, 9] {
                let a = run_plan(&plain, &plan, seed);
                let b = run_plan(&batched, &plan, seed);
                assert_eq!(a.report.output, b.report.output, "{}", plan.describe());
                assert_eq!(a.schedule, b.schedule, "{}", plan.describe());
                let lost = |o: &PlanOutcome| {
                    o.violations
                        .iter()
                        .any(|v| matches!(v.kind, ViolationKind::QuorumLost { .. }))
                };
                assert_eq!(lost(&a), lost(&b), "{}", plan.describe());
                let safety = |o: &PlanOutcome| {
                    o.violations
                        .iter()
                        .filter(|v| !matches!(v.kind, ViolationKind::QuorumLost { .. }))
                        .map(|v| v.kind.clone())
                        .collect::<Vec<_>>()
                };
                assert_eq!(safety(&a), safety(&b), "{}", plan.describe());
            }
        }
    }

    #[test]
    fn corrupted_scenario_reproduces_clean_outcomes() {
        // Corruption plus quarantine is a message-economy change only: with
        // every damaged message detected, dropped before delivery and later
        // retransmitted, `ksa-net-corrupt` must decide the same values on
        // the same schedules as `ksa-net` for every plan and seed — the
        // linearized decisions are provably unaffected by corruption.
        let plain = Scenario::ksa_net();
        let corrupt = Scenario::ksa_net_corrupt();
        assert_eq!(corrupt.net_corrupt, 5);
        for plan in [
            FaultPlan::clean(),
            FaultPlan::clean().corrupt_link(1, 0, plain.stab),
            FaultPlan::clean().drop_link(0, 0, plain.stab),
        ] {
            for seed in [3, 9] {
                let a = run_plan(&plain, &plan, seed);
                let b = run_plan(&corrupt, &plan, seed);
                assert_eq!(a.report.output, b.report.output, "{}", plan.describe());
                assert_eq!(a.schedule, b.schedule, "{}", plan.describe());
                // Safety and wait-freedom verdicts are identical; quorum
                // loss is monotone in message loss — the periodic knob can
                // push a plan-marginal quorum past the horizon (an *extra*
                // degradation) but can never make one disappear.
                let lost = |o: &PlanOutcome| {
                    o.violations
                        .iter()
                        .any(|v| matches!(v.kind, ViolationKind::QuorumLost { .. }))
                };
                if lost(&a) {
                    assert!(lost(&b), "{}", plan.describe());
                }
                let rest = |o: &PlanOutcome| {
                    o.violations
                        .iter()
                        .filter(|v| !matches!(v.kind, ViolationKind::QuorumLost { .. }))
                        .map(|v| v.kind.clone())
                        .collect::<Vec<_>>()
                };
                assert_eq!(rest(&a), rest(&b), "{}", plan.describe());
            }
        }
    }

    #[test]
    fn corruption_window_plans_stay_clean_over_the_net() {
        // A corruption window behaves like a drop window at the protocol
        // level: majority-safe, quorum ops retransmit past it, no
        // violations, same decisions as shm.
        let sc = Scenario::ksa_net();
        let plan = FaultPlan::clean().corrupt_link(0, 0, sc.stab);
        let net = run_plan(&sc, &plan, 9);
        assert!(
            net.violations.is_empty(),
            "{:?}",
            net.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        let shm = run_plan(&Scenario::ksa(), &FaultPlan::clean(), 9);
        assert_eq!(shm.report.output, net.report.output);
        assert_eq!(shm.schedule, net.schedule);
    }

    #[test]
    fn sharded_scenario_decides_like_shm() {
        let shm = run_plan(&Scenario::ksa(), &FaultPlan::clean(), 9);
        let sharded = run_plan(&Scenario::ksa_net_shard(), &FaultPlan::clean(), 9);
        assert!(sharded.violations.is_empty());
        assert_eq!(shm.report.output, sharded.report.output);
        assert_eq!(shm.schedule, sharded.schedule);
    }

    #[test]
    fn sharded_quorum_loss_carries_the_group_tag_and_replays() {
        // Plan faults replicate per group, so a majority-breaking partition
        // strands whichever group the first stranded op routes to; the
        // violation names that group and the artifact round-trips + replays.
        let sc = Scenario::ksa_net_shard();
        let plan = FaultPlan::clean().partition(vec![0, 1], 0);
        let outcome = run_plan(&sc, &plan, 3);
        let v = outcome
            .violations
            .iter()
            .find(|w| matches!(w.kind, ViolationKind::QuorumLost { .. }))
            .expect("quorum ops must degrade under a majority-breaking partition")
            .clone();
        let ViolationKind::QuorumLost { shard, .. } = &v.kind else {
            unreachable!();
        };
        assert!(*shard < sc.net_shards, "shard tag {shard} out of range");
        let text = v.to_json().to_string();
        let parsed = Violation::from_json(&crate::json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, v);
        let verdict = replay(&parsed).unwrap();
        assert!(verdict.reproduced, "{}", verdict.detail);
    }

    #[test]
    fn majority_breaking_partition_yields_replayable_violation() {
        // The PR's acceptance shape: a plan that partitions a majority away
        // forever exceeds the ABD precondition; the stranded quorum op is a
        // typed `QuorumLost` violation (no panic on the default path) whose
        // artifact round-trips through JSON and replays.
        let sc = Scenario::ksa_net();
        let plan = FaultPlan::clean().partition(vec![0, 1], 0);
        assert!(!plan.net_majority_safe(sc.net_nodes));
        let outcome = run_plan(&sc, &plan, 3);
        let v = outcome
            .violations
            .iter()
            .find(|w| matches!(w.kind, ViolationKind::QuorumLost { .. }))
            .expect("quorum ops must degrade under a majority-breaking partition")
            .clone();
        match &v.kind {
            ViolationKind::QuorumLost { op, answered, needed, .. } => {
                assert_eq!(op, "write", "the first stranded quorum op is a register write");
                assert_eq!((*answered, *needed), (1, 2), "only the minority side answered");
            }
            other => panic!("expected quorum-lost violation, got {other}"),
        }
        // The degraded run still terminates: the view serves every op, so
        // the schedule is recorded and the outcome replayable.
        assert!(!v.schedule.is_empty());
        let text = v.to_json().to_string();
        let parsed =
            Violation::from_json(&crate::json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, v);
        let verdict = replay(&parsed).unwrap();
        assert!(verdict.reproduced, "{}", verdict.detail);
        assert!(verdict.detail.contains("quorum lost again"), "{}", verdict.detail);
    }

    #[test]
    fn replica_crash_recovery_plans_stay_clean() {
        // A crash/recover pair inside the recovery horizon is majority-safe
        // and the run completes without degradations — the dynamics the
        // static credit in `net_majority_safe` predicts.
        let sc = Scenario::ksa_net();
        let plan = FaultPlan::clean().crash_replica(2, 10).recover_replica(2, 30);
        assert!(plan.net_majority_safe(sc.net_nodes));
        let outcome = run_plan(&sc, &plan, 5);
        assert!(
            outcome.violations.is_empty(),
            "{}: {:?}",
            plan.describe(),
            outcome.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        assert!(outcome.report.verdict.is_ok());
    }

    #[test]
    fn non_fifo_scenario_decides_like_the_fifo_one() {
        // ABD is reordering-tolerant: the non-FIFO scenario validates and
        // decides the same outputs as shm ksa under the clean plan.
        let shm = run_plan(&Scenario::ksa(), &FaultPlan::clean(), 9);
        let net = run_plan(&Scenario::ksa_net_reorder(), &FaultPlan::clean(), 9);
        assert_eq!(shm.report.output, net.report.output);
        assert_eq!(shm.schedule, net.schedule);
        assert!(net.violations.is_empty());
    }

    #[test]
    fn gossip_and_shm_ksa_agree_on_outputs() {
        // Key-homed ops make the fault-free gossip run observationally
        // identical to shared memory: same decisions, same schedule, no
        // violations.
        let shm = run_plan(&Scenario::ksa(), &FaultPlan::clean(), 9);
        let gsp = run_plan(&Scenario::ksa_net_gossip(), &FaultPlan::clean(), 9);
        assert!(
            gsp.violations.is_empty(),
            "{:?}",
            gsp.violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
        assert_eq!(shm.report.output, gsp.report.output);
        assert_eq!(shm.schedule, gsp.schedule);
    }

    #[test]
    fn gossip_renaming_decides_like_shm() {
        let shm = run_plan(&Scenario::renaming(), &FaultPlan::clean(), 5);
        let gsp = run_plan(&Scenario::rename_net_gossip(), &FaultPlan::clean(), 5);
        assert!(gsp.violations.is_empty());
        assert_eq!(shm.report.output, gsp.report.output);
        assert_eq!(shm.schedule, gsp.schedule);
    }

    #[test]
    fn starved_gossip_replica_yields_replayable_advice_stale_violation() {
        // One replica is partitioned from round one and crashes for good
        // mid-run: deltas it minted never propagated, so once `home_of`
        // probes past it the fallback replica serves genuinely stale values
        // and — after the crashed-home horizon — a typed `AdviceStale`
        // violation whose artifact round-trips through JSON and replays.
        // Safety holds: stale advice delays, it never lies, so staleness is
        // the *only* violation and the Δ-verdict stays ok.
        let sc = Scenario::ksa_net_gossip();
        let plan = FaultPlan::clean().partition(vec![0], 0).crash_replica(0, 400);
        let outcome = run_plan(&sc, &plan, 3);
        let v = outcome
            .violations
            .iter()
            .find(|w| matches!(w.kind, ViolationKind::AdviceStale { .. }))
            .expect("an unhealed partition must starve some home past the horizon")
            .clone();
        match &v.kind {
            ViolationKind::AdviceStale { op, answered, needed, .. } => {
                assert_eq!(op, "read");
                assert!(answered > needed, "dry rounds beyond the horizon: {}", v.kind);
            }
            other => panic!("expected advice-stale violation, got {other}"),
        }
        assert_eq!(outcome.violations.len(), 1, "staleness must be the only violation");
        assert!(outcome.report.verdict.is_ok());
        let text = v.to_json().to_string();
        let parsed = Violation::from_json(&crate::json::Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, v);
        let verdict = replay(&parsed).unwrap();
        assert!(verdict.reproduced, "{}", verdict.detail);
        assert!(verdict.detail.contains("advice stale again"), "{}", verdict.detail);
    }

    #[test]
    #[should_panic(expected = "crashes all")]
    fn crashing_every_s_process_is_rejected() {
        let sc = Scenario::ksa();
        let plan = FaultPlan::clean().crash_s(0, 0).crash_s(1, 0).crash_s(2, 0);
        let _ = build_run(&sc, &plan, 1);
    }
}
