//! Adversarial fault injection for the EFD model.
//!
//! The paper's model already contains one adversary — the scheduler — and
//! the rest of this repository explores it (random ensembles, the
//! model-check explorer). This crate adds the *other* adversaries the model
//! quantifies over but the seed never exercised systematically:
//!
//! * **crashes** — S-processes failing at chosen times, folded into the
//!   failure pattern so the detector stays honest *for the faulty pattern*
//!   ([`plan::FaultPlan::crash_s`]);
//! * **corrupted advice** — lost and stale failure-detector samples,
//!   delayed advice visibility ([`fdwrap::FaultyFdGen`]), probing how much
//!   each algorithm actually relies on its detector;
//! * **starvation** — C-processes frozen by the scheduler, riding the
//!   kernel's `Starve` adversary;
//! * **network faults** — for net-backed scenarios: replica partitions,
//!   drop windows, heals and replica crash/recover pairs
//!   ([`plan::FaultPlan::crash_replica`]). The searched menu stays
//!   majority-safe ([`plan::FaultPlan::net_majority_safe`]); plans that
//!   break the majority anyway surface as typed `quorum-lost` violations
//!   instead of panics.
//!
//! Plans are *searched* (bounded DFS over a component menu,
//! [`sweep::PlanSearch`]) rather than sampled; every `(plan, seed)` job is
//! deterministic, so a failed one is reported as a structured, replayable
//! [`violation::Violation`] — JSON artifact in, exact re-execution out
//! ([`run::replay`]) — after a greedy shrinking pass ([`shrink::shrink`]).
//! Panics inside a run are caught per job and become violations themselves;
//! a sweep never dies half way.
//!
//! The [`chaos`] module is the long-horizon complement to the searched
//! sweeps: deterministic 10k+ tick soaks against any backend under a
//! seeded stream of composed faults, with online oracles, a flight
//! recorder of copy-on-write checkpoints backing violation replay, and
//! per-fault-class MTTR aggregation of the degradation → resolution
//! lifecycle ([`chaos::soak`]).

pub mod chaos;
pub mod fdwrap;
pub mod plan;
pub mod run;
pub mod scenario;
pub mod shrink;
pub mod sweep;
pub mod violation;

/// The canonical JSON encoder, hoisted into `wfa-obs` (re-exported here so
/// `wfa_faults::json::Json` keeps working).
pub use wfa_obs::json;

/// Everything a fault-sweep caller usually needs.
pub mod prelude {
    pub use crate::chaos::{
        replay_soak, shrink_soak, soak, Intensity, SoakBackend, SoakConfig, SoakReport,
    };
    pub use crate::fdwrap::FaultyFdGen;
    pub use crate::json::Json;
    pub use crate::plan::{FaultPlan, FdFault};
    pub use crate::run::{replay, run_plan, PlanOutcome, ReplayVerdict};
    pub use crate::scenario::Scenario;
    pub use crate::shrink::shrink;
    pub use crate::sweep::{sweep, PlanSearch, SweepConfig, SweepReport};
    pub use crate::violation::{Violation, ViolationKind};
}
