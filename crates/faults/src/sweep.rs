//! Systematic fault sweeps: bounded-DFS plan search, panic-isolated
//! parallel evaluation, deterministic reports.
//!
//! [`PlanSearch`] *enumerates* fault plans (every combination of up to
//! `depth` atomic faults from a scenario-derived menu) instead of sampling
//! them — the adversary is exhaustive within its bound, so a clean sweep is
//! a statement about a space, not a sample. [`sweep`] evaluates every
//! `(plan, seed)` job on a worker pool; each job runs under `catch_unwind`,
//! so one torn automaton becomes a [`ViolationKind::Panic`] entry in the
//! report instead of taking the sweep down.
//!
//! Determinism contract: job seeds derive from `(base_seed, job index)`,
//! results are assembled in job-index order, and the report serializes no
//! timing or thread information — `SweepReport::to_json` is byte-identical
//! for any worker count (`WFA_THREADS=1` vs `8` is CI-enforced).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use wfa_obs::metrics::{Counter, MetricsHandle, Snapshot};

use crate::json::Json;
use crate::plan::FaultPlan;
use crate::run::{payload_string, run_plan_observed};
use crate::scenario::Scenario;
use crate::shrink::shrink;
use crate::violation::{Violation, ViolationKind};

/// One atomic fault the search can add to a plan.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Component {
    Crash(usize, u64),
    Stop(usize, u64),
    Lose(usize, u64),
    Freeze(usize, u64),
    Delay(u64),
    Clear(u64),
    NetPartition(usize, u64),
    NetDrop(usize, u64, u64),
    NetHeal(u64),
    /// Crash one replica at `.1`, recover it at `.2` (inside the recovery
    /// horizon, so the plan stays creditable).
    NetCrashRecover(usize, u64, u64),
    /// Crash replicas 0 and 1 at `.0`, recover both at `.1`: a majority
    /// blip the retransmission+re-sync machinery must absorb.
    NetBlip(u64, u64),
    /// Corrupt all traffic to/from one replica during a window; the
    /// checksum layer quarantines the damage, so this is a loss window the
    /// retransmission machinery recovers from.
    NetCorrupt(usize, u64, u64),
}

impl Component {
    /// `true` for components whose *only* effect is message loss over the
    /// net backend: drops, corruption windows (quarantine = loss),
    /// partitions without heals, and creditable crash/recover pairs.
    ///
    /// These are the components dominance pruning may treat as monotone:
    /// the net backend never changes a decision (degraded ops serve the
    /// linearized view), so adding pure loss can only *add* violations —
    /// if a superset plan survived cleanly, the subset cannot newly
    /// violate. Mitigating components ([`Component::Clear`],
    /// [`Component::NetHeal`]) and process/FD faults (which change the run
    /// itself) are excluded: a plan differing by one of those is never
    /// used to prune. Scenarios on the gossip backend never prune at all
    /// (`Scenario::net_gossip`): there, loss starves anti-entropy and
    /// changes the *value* a read observes, so the monotone argument fails.
    fn is_monotone_loss(&self) -> bool {
        matches!(
            self,
            Component::NetDrop(..)
                | Component::NetCorrupt(..)
                | Component::NetPartition(..)
                | Component::NetCrashRecover(..)
                | Component::NetBlip(..)
        )
    }
}

/// Bounded-DFS enumeration of fault plans for one scenario.
///
/// The component menu is derived from the scenario (crash/stop points per
/// process at `t ∈ {0, stab}`, sample loss and freezing, advice delay and a
/// clearing point); [`PlanSearch::plans`] returns every valid combination
/// of at most `depth` components, in a deterministic order starting with
/// the clean plan.
#[derive(Clone, Debug)]
pub struct PlanSearch {
    components: Vec<Component>,
    depth: usize,
    n: usize,
    net_nodes: usize,
}

impl PlanSearch {
    /// The search space for `sc` with the given combination bound.
    pub fn for_scenario(sc: &Scenario, depth: usize) -> PlanSearch {
        let mut components = Vec::new();
        let times = [0, sc.stab];
        for q in 0..sc.n {
            for t in times {
                components.push(Component::Crash(q, t));
            }
        }
        let max_p = sc.task.max_participants().min(sc.n);
        for i in 0..max_p {
            components.push(Component::Stop(i, 0));
        }
        for q in 0..sc.n {
            components.push(Component::Lose(q, 2));
            components.push(Component::Freeze(q, 3));
        }
        components.push(Component::Delay(sc.stab));
        components.push(Component::Clear(2 * sc.stab));
        if sc.net_nodes > 0 {
            // Single-replica partitions, bounded drop windows and
            // crash/recover pairs inside the recovery horizon: the
            // adversary stays inside (or creditably returns to) the ABD
            // majority assumption, so these probe the protocol's liveness
            // rather than exceed its model (majority-breaking plans are
            // built by hand, not swept — the all-crash exclusion's
            // analogue).
            let rh = wfa_net::config::NetConfig::new(sc.net_nodes, 0).recovery_horizon();
            for node in 0..sc.net_nodes {
                components.push(Component::NetPartition(node, sc.stab));
                components.push(Component::NetDrop(node, 0, sc.stab));
                components.push(Component::NetCorrupt(node, 0, sc.stab));
                components.push(Component::NetCrashRecover(node, sc.stab, sc.stab + rh));
            }
            components.push(Component::NetHeal(2 * sc.stab));
            if sc.net_nodes >= 3 {
                components.push(Component::NetBlip(2 * sc.stab, 2 * sc.stab + rh));
            }
        }
        PlanSearch { components, depth, n: sc.n, net_nodes: sc.net_nodes }
    }

    /// Every valid plan with at most `depth` components (clean plan first).
    pub fn plans(&self) -> Vec<FaultPlan> {
        self.plans_with_combos().into_iter().map(|(p, _)| p).collect()
    }

    /// [`PlanSearch::plans`] plus each plan's component combination (menu
    /// indices) — what dominance pruning compares as a set.
    pub fn plans_with_combos(&self) -> Vec<(FaultPlan, Vec<usize>)> {
        let mut out = vec![(FaultPlan::clean(), Vec::new())];
        let mut combo = Vec::new();
        self.dfs(0, &mut combo, &mut out);
        out
    }

    fn dfs(&self, from: usize, combo: &mut Vec<usize>, out: &mut Vec<(FaultPlan, Vec<usize>)>) {
        if combo.len() >= self.depth {
            return;
        }
        for idx in from..self.components.len() {
            combo.push(idx);
            if let Some(plan) = self.build(combo) {
                out.push((plan, combo.clone()));
                self.dfs(idx + 1, combo, out);
            }
            combo.pop();
        }
    }

    /// Builds the plan for a component combination, or `None` if invalid
    /// (all S-processes crashed, a process FD-faulted twice, a duplicate
    /// crash/stop target, a delay repeated, or a clear with nothing to
    /// clear).
    fn build(&self, combo: &[usize]) -> Option<FaultPlan> {
        let mut plan = FaultPlan::clean();
        for idx in combo {
            match &self.components[*idx] {
                Component::Crash(q, t) => {
                    if plan.crashes.iter().any(|(cq, _)| cq == q) {
                        return None;
                    }
                    plan = plan.crash_s(*q, *t);
                }
                Component::Stop(i, t) => {
                    if plan.stops.iter().any(|(si, _)| si == i) {
                        return None;
                    }
                    plan = plan.stop_c(*i, *t);
                }
                Component::Lose(q, p) => {
                    if plan.fd_faults.iter().any(|f| f.q() == *q) {
                        return None;
                    }
                    plan = plan.lose(*q, *p);
                }
                Component::Freeze(q, p) => {
                    if plan.fd_faults.iter().any(|f| f.q() == *q) {
                        return None;
                    }
                    plan = plan.freeze(*q, *p);
                }
                Component::Delay(d) => {
                    if plan.advice_delay > 0 {
                        return None;
                    }
                    plan = plan.delay_advice(*d);
                }
                Component::Clear(t) => {
                    if plan.clear_after.is_some()
                        || (plan.fd_faults.is_empty() && plan.advice_delay == 0)
                    {
                        return None;
                    }
                    plan = plan.clear_at(*t);
                }
                Component::NetPartition(node, t) => {
                    if plan
                        .net_faults
                        .iter()
                        .any(|f| matches!(f, wfa_net::config::NetFault::Partition { .. }))
                    {
                        return None;
                    }
                    plan = plan.partition(vec![*node], *t);
                }
                Component::NetDrop(node, at, until) => {
                    if plan.net_faults.iter().any(
                        |f| matches!(f, wfa_net::config::NetFault::Drop { node: d, .. } if d == node),
                    ) {
                        return None;
                    }
                    plan = plan.drop_link(*node, *at, *until);
                }
                Component::NetCorrupt(node, at, until) => {
                    if plan.net_faults.iter().any(
                        |f| matches!(f, wfa_net::config::NetFault::CorruptMessage { node: c, .. } if c == node),
                    ) {
                        return None;
                    }
                    plan = plan.corrupt_link(*node, *at, *until);
                }
                Component::NetHeal(t) => {
                    let has_partition = plan
                        .net_faults
                        .iter()
                        .any(|f| matches!(f, wfa_net::config::NetFault::Partition { .. }));
                    let has_heal = plan
                        .net_faults
                        .iter()
                        .any(|f| matches!(f, wfa_net::config::NetFault::Heal { .. }));
                    if !has_partition || has_heal {
                        return None;
                    }
                    plan = plan.heal(*t);
                }
                Component::NetCrashRecover(node, at, rec) => {
                    if plan.net_faults.iter().any(|f| {
                        matches!(f, wfa_net::config::NetFault::CrashReplica { node: n, .. } if n == node)
                    }) {
                        return None;
                    }
                    plan = plan.crash_replica(*node, *at).recover_replica(*node, *rec);
                }
                Component::NetBlip(at, rec) => {
                    if plan
                        .net_faults
                        .iter()
                        .any(|f| matches!(f, wfa_net::config::NetFault::CrashReplica { .. }))
                    {
                        return None;
                    }
                    plan = plan
                        .crash_replica(0, *at)
                        .crash_replica(1, *at)
                        .recover_replica(0, *rec)
                        .recover_replica(1, *rec);
                }
            }
        }
        if plan.crashes.len() >= self.n {
            return None;
        }
        // The search never exceeds the ABD model: every emitted plan keeps a
        // reachable majority (the all-crash exclusion's network analogue).
        if self.net_nodes > 0 && !plan.net_majority_safe(self.net_nodes) {
            return None;
        }
        Some(plan)
    }
}

/// Configuration of one fault sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// The scenario to sweep ([`Scenario::by_name`]).
    pub scenario: String,
    /// Combination bound for [`PlanSearch`].
    pub depth: usize,
    /// Seeds evaluated per plan.
    pub seeds_per_plan: u64,
    /// Base seed (job seeds derive from it deterministically).
    pub base_seed: u64,
    /// Shrink violations before reporting.
    pub shrink: bool,
    /// Worker threads; `None` reads `WFA_THREADS` (default 1).
    pub threads: Option<usize>,
    /// Dominance-prune the plan space: a plan whose component set is a
    /// subset of a *surviving* (zero-violation) plan's, where every extra
    /// component is pure message loss, is skipped — it cannot newly
    /// violate. Pruning never changes the violation list, only which clean
    /// runs are spared; disable it to force-run every plan.
    pub prune: bool,
    /// Hard cap on plans evaluated (`0`: unlimited). Enumeration order is
    /// deterministic, so the truncation is too; everything past the budget
    /// is counted in [`SweepReport::plans_pruned`].
    pub plan_budget: usize,
}

impl SweepConfig {
    /// A small default sweep of `scenario`: depth 2, 2 seeds per plan.
    pub fn new(scenario: &str) -> SweepConfig {
        SweepConfig {
            scenario: scenario.to_string(),
            depth: 2,
            seeds_per_plan: 2,
            base_seed: 1,
            shrink: true,
            threads: None,
            prune: true,
            plan_budget: 0,
        }
    }

    /// The resolved worker count.
    pub fn resolved_threads(&self) -> usize {
        self.threads
            .or_else(|| std::env::var("WFA_THREADS").ok().and_then(|s| s.parse().ok()))
            .unwrap_or(1)
            .max(1)
    }
}

/// The deterministic outcome of a fault sweep.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The swept scenario.
    pub scenario: String,
    /// Plans enumerated by the search (before dedup, budget, or pruning).
    pub plans: usize,
    /// Plans *not* evaluated: dominance-pruned, deduplicated, or past the
    /// plan budget. Always `plans - plans_run`.
    pub plans_pruned: usize,
    /// Plans actually evaluated.
    pub plans_run: usize,
    /// `(plan, seed)` jobs evaluated (`plans_run × seeds_per_plan`).
    pub runs: usize,
    /// All violations, in job order (shrunk if configured); panics appear
    /// here as [`ViolationKind::Panic`] entries.
    pub violations: Vec<Violation>,
    /// The canonical metrics snapshot: each job records into its own
    /// registry (shard-per-job, no cross-thread contention) and the
    /// per-job snapshots are merged in job-index order, so the result is
    /// worker-count invariant. Not part of [`SweepReport::to_json`], whose
    /// byte format predates the observability layer; export it through
    /// [`Snapshot::to_json`] instead.
    pub metrics: Snapshot,
}

impl SweepReport {
    /// Violations of a given broad kind.
    pub fn count_kind(&self, pred: impl Fn(&ViolationKind) -> bool) -> usize {
        self.violations.iter().filter(|v| pred(&v.kind)).count()
    }

    /// Canonical serialization — byte-identical across worker counts.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("plans".into(), Json::Num(self.plans as u64)),
            ("plans_pruned".into(), Json::Num(self.plans_pruned as u64)),
            ("plans_run".into(), Json::Num(self.plans_run as u64)),
            ("runs".into(), Json::Num(self.runs as u64)),
            (
                "violations".into(),
                Json::Arr(self.violations.iter().map(Violation::to_json).collect()),
            ),
        ])
    }
}

/// The seed for seed-slot `idx` of a sweep (the ensemble derivation,
/// reused). Every plan is evaluated on the *same* seed set — slot `s` maps
/// to the same seed under every plan, which is what makes subset-dominance
/// comparisons between plans sound (same inputs, same base schedule).
pub fn job_seed(base: u64, idx: usize) -> u64 {
    base.wrapping_mul(1_000_003).wrapping_add(idx as u64)
}

/// Runs one sweep: enumerates plans, evaluates every `(plan, seed)` job on
/// `resolved_threads()` workers with per-job panic isolation, and returns
/// the violations in deterministic job order.
///
/// # Panics
///
/// Panics only if the scenario name is unknown — never because a *run*
/// panicked (those become [`ViolationKind::Panic`] violations).
pub fn sweep(config: &SweepConfig) -> SweepReport {
    let sc = Scenario::by_name(&config.scenario)
        .unwrap_or_else(|| panic!("unknown scenario `{}`", config.scenario));
    let search = PlanSearch::for_scenario(&sc, config.depth);
    let enumerated = search.plans_with_combos();
    let generated = enumerated.len();

    // Plan-level dedup: distinct combinations that assemble an identical
    // fault plan would evaluate identical runs; keep the first occurrence.
    let mut seen = std::collections::HashSet::new();
    let mut plans: Vec<(FaultPlan, Vec<usize>)> = Vec::new();
    for (plan, combo) in enumerated {
        if seen.insert(plan.describe()) {
            plans.push((plan, combo));
        }
    }
    // Plan budget: a deterministic truncation in enumeration order bounds
    // the sweep's cost; everything past the cap counts as pruned.
    if config.plan_budget > 0 && plans.len() > config.plan_budget {
        plans.truncate(config.plan_budget);
    }

    // Dominance pruning works on u128 combination masks, so the subset
    // tests are O(1); a menu wider than 128 components (none is — the
    // widest canonical menu is ~35) would overflow the mask, in which case
    // pruning is skipped (correctness never depends on it).
    let maskable = search.components.len() <= 128;
    let mask_of = |combo: &[usize]| combo.iter().fold(0u128, |m, i| m | (1u128 << *i));
    // Over the gossip backend *no* component is monotone: loss starves
    // anti-entropy, which changes what a read observes (stale advice), not
    // just what an op costs — the clean-superset argument is unsound there,
    // so dominance pruning is disabled (the mask is empty, so no plan ever
    // has pure-loss extras).
    let monotone: u128 = if sc.net_gossip {
        0
    } else {
        search
            .components
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_monotone_loss())
            .fold(0u128, |m, (i, _)| m | (1u128 << i))
    };

    // Execute in waves of descending combination size: every potential
    // dominator (a strict superset) finishes in an earlier wave, so by the
    // time a plan is considered its dominators' verdicts are all in.
    // Equal-size sets cannot dominate each other (a subset of equal
    // cardinality is equal), so the barrier between waves is the only
    // ordering pruning needs — and it is thread-count independent.
    let mut order: Vec<usize> = (0..plans.len()).collect();
    order.sort_by_key(|i| std::cmp::Reverse(plans[*i].1.len()));

    let seeds = config.seeds_per_plan as usize;
    let slots: Mutex<Vec<JobSlot>> = Mutex::new(vec![None; plans.len() * seeds]);
    let mut clean_masks: Vec<u128> = Vec::new();
    let mut plans_run = 0usize;

    let mut w = 0;
    while w < order.len() {
        let size = plans[order[w]].1.len();
        let mut runnable = Vec::new();
        while w < order.len() && plans[order[w]].1.len() == size {
            let pi = order[w];
            w += 1;
            let qm = mask_of(&plans[pi].1);
            // Prune iff some surviving plan's set is a superset whose
            // extras are all pure-loss components: the subset plan cannot
            // newly violate. The pruned plan's own mask joins the clean
            // set — its cleanliness is implied, so it dominates onward.
            let dominated = config.prune
                && maskable
                && clean_masks.iter().any(|pm| qm & !pm == 0 && (pm & !qm) & !monotone == 0);
            if dominated {
                clean_masks.push(qm);
            } else {
                runnable.push(pi);
            }
        }
        plans_run += runnable.len();
        let jobs: Vec<(usize, usize)> =
            runnable.iter().flat_map(|pi| (0..seeds).map(move |s| (*pi, s))).collect();
        run_wave(&sc, config, &plans, &jobs, &slots);
        // Harvest the wave's verdicts before the next (smaller) wave is
        // admitted: a plan survives iff every seed produced zero
        // violations (a panic counts — it is one in the report).
        if maskable {
            let held = slots.lock().expect("slot lock");
            for pi in runnable {
                let clean = (0..seeds)
                    .all(|s| held[pi * seeds + s].as_ref().is_some_and(|(vs, _)| vs.is_empty()));
                if clean {
                    clean_masks.push(mask_of(&plans[pi].1));
                }
            }
        }
    }

    // Violations and metrics assemble in enumeration order (plan index ×
    // seed slot), not wave order — the report stays byte-identical no
    // matter how the waves interleaved across workers.
    let mut metrics = Snapshot::default();
    let mut violations = Vec::new();
    let mut runs = 0;
    for (vs, snap) in slots.into_inner().expect("slot lock").into_iter().flatten() {
        runs += 1;
        violations.extend(vs);
        metrics.merge(&snap);
    }
    let sweep_obs = MetricsHandle::counters();
    sweep_obs.add(Counter::SweepPlansGenerated, generated as u64);
    sweep_obs.add(Counter::SweepPlansPruned, (generated - plans_run) as u64);
    sweep_obs.add(Counter::SweepPlansRun, plans_run as u64);
    metrics.merge(&sweep_obs.snapshot().expect("sweep registry is enabled"));
    SweepReport {
        scenario: sc.name,
        plans: generated,
        plans_pruned: generated - plans_run,
        plans_run,
        runs,
        violations,
        metrics,
    }
}

/// One enumeration-order result slot: a job's violations and metrics
/// snapshot, `None` until (or unless — pruned plans never run) it fills.
type JobSlot = Option<(Vec<Violation>, Snapshot)>;

/// Evaluates one wave's `(plan index, seed slot)` jobs on the worker pool,
/// depositing each job's violations and metrics snapshot into its
/// enumeration-order slot.
fn run_wave(
    sc: &Scenario,
    config: &SweepConfig,
    plans: &[(FaultPlan, Vec<usize>)],
    jobs: &[(usize, usize)],
    slots: &Mutex<Vec<JobSlot>>,
) {
    let seeds = config.seeds_per_plan as usize;
    let next = AtomicUsize::new(0);
    let workers = config.resolved_threads().min(jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((pi, s)) = jobs.get(i).copied() else {
                    return;
                };
                let plan = &plans[pi].0;
                let seed = job_seed(config.base_seed, s);
                // One registry per job, created outside `catch_unwind`: a
                // panicking run still reports the counters it reached (the
                // same prefix on every re-execution, so still deterministic).
                let obs = MetricsHandle::counters();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut vs = run_plan_observed(sc, plan, seed, &obs).violations;
                    if config.shrink {
                        for v in &mut vs {
                            obs.add(Counter::ShrinkReplays, shrink(v) as u64);
                        }
                    }
                    vs
                }));
                let vs = result.unwrap_or_else(|payload| {
                    vec![Violation {
                        scenario: sc.name.clone(),
                        seed,
                        plan: plan.clone(),
                        kind: ViolationKind::Panic { payload: payload_string(payload.as_ref()) },
                        schedule: Vec::new(),
                        original_len: 0,
                    }]
                });
                obs.bump(Counter::SweepJobs);
                obs.add(Counter::SweepViolations, vs.len() as u64);
                let snap = obs.snapshot().expect("job registry is enabled");
                slots.lock().expect("slot lock")[pi * seeds + s] = Some((vs, snap));
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FdFault;

    #[test]
    fn plan_search_is_bounded_and_valid() {
        let sc = Scenario::adopt_commit();
        let search = PlanSearch::for_scenario(&sc, 2);
        let plans = search.plans();
        assert_eq!(plans[0], FaultPlan::clean());
        assert!(plans.len() > 20, "space too small: {}", plans.len());
        for p in &plans {
            assert!(p.crashes.len() < sc.n, "all-crash plan: {}", p.describe());
            // At most one FD fault per process.
            for f in &p.fd_faults {
                assert_eq!(p.fd_faults.iter().filter(|g| g.q() == f.q()).count(), 1);
            }
        }
        // Depth 0 is just the clean plan; depth grows the space.
        assert_eq!(PlanSearch::for_scenario(&sc, 0).plans().len(), 1);
        let d1 = PlanSearch::for_scenario(&sc, 1).plans().len();
        assert!(d1 > 1 && d1 < plans.len());
    }

    #[test]
    fn search_covers_crash_and_delay_combinations() {
        let sc = Scenario::ksa();
        let plans = PlanSearch::for_scenario(&sc, 2).plans();
        assert!(plans.iter().any(|p| !p.crashes.is_empty() && p.advice_delay > 0));
        assert!(plans
            .iter()
            .any(|p| matches!(p.fd_faults.first(), Some(FdFault::Lose { .. }))
                && p.clear_after.is_some()));
    }

    #[test]
    fn net_scenarios_sweep_majority_safe_network_plans() {
        use wfa_net::config::NetFault;

        let sc = Scenario::ksa_net();
        let plans = PlanSearch::for_scenario(&sc, 2).plans();
        // The menu actually contributes: partitions, drops and a heal show
        // up, and heals only ever ride along with a partition.
        assert!(plans
            .iter()
            .any(|p| p.net_faults.iter().any(|f| matches!(f, NetFault::Partition { .. }))));
        assert!(plans
            .iter()
            .any(|p| p.net_faults.iter().any(|f| matches!(f, NetFault::Drop { .. }))));
        assert!(plans
            .iter()
            .any(|p| p.net_faults.iter().any(|f| matches!(f, NetFault::CorruptMessage { .. }))));
        assert!(plans
            .iter()
            .any(|p| p.net_faults.iter().any(|f| matches!(f, NetFault::Heal { .. }))));
        assert!(plans
            .iter()
            .any(|p| p.net_faults.iter().any(|f| matches!(f, NetFault::CrashReplica { .. }))));
        assert!(plans
            .iter()
            .any(|p| p.net_faults.iter().any(|f| matches!(f, NetFault::RecoverReplica { .. }))));
        for p in &plans {
            assert!(p.net_majority_safe(sc.net_nodes), "model-exceeding plan: {}", p.describe());
            // Every swept crash carries its recovery — the menu only offers
            // creditable pairs.
            for f in &p.net_faults {
                if let NetFault::CrashReplica { node, .. } = f {
                    assert!(
                        p.net_faults
                            .iter()
                            .any(|g| matches!(g, NetFault::RecoverReplica { node: r, .. } if r == node)),
                        "unrecovered swept crash: {}",
                        p.describe()
                    );
                }
            }
            if p.net_faults.iter().any(|f| matches!(f, NetFault::Heal { .. })) {
                assert!(
                    p.net_faults.iter().any(|f| matches!(f, NetFault::Partition { .. })),
                    "heal with nothing to heal: {}",
                    p.describe()
                );
            }
        }
        // Shared-memory scenarios get no network components.
        assert!(PlanSearch::for_scenario(&Scenario::ksa(), 2)
            .plans()
            .iter()
            .all(|p| p.net_faults.is_empty()));
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let mut config = SweepConfig::new("fragile-commit");
        config.depth = 1;
        config.seeds_per_plan = 2;
        config.shrink = false; // keep the test fast; shrinking is deterministic anyway
        config.threads = Some(1);
        let serial = sweep(&config);
        config.threads = Some(8);
        let parallel = sweep(&config);
        assert_eq!(serial.to_json().to_string(), parallel.to_json().to_string());
        // The merged metrics snapshot is part of the determinism contract.
        assert_eq!(
            serial.metrics.to_json().to_string(),
            parallel.metrics.to_json().to_string()
        );
        assert_eq!(serial.metrics.counter("sweep_jobs"), Some(serial.runs as u64));
        assert_eq!(
            serial.metrics.counter("sweep_violations"),
            Some(serial.violations.len() as u64)
        );
        assert!(serial.metrics.counter("schedule_slots").unwrap_or(0) > 0);
    }

    #[test]
    fn pruning_never_changes_the_violation_list() {
        // The dominance rule's empirical soundness pin: on the canonical
        // net scenario at depth 2 the pruned and unpruned sweeps must agree
        // on every violation byte — pruning only spares provably clean
        // runs. (Shared-memory scenarios never prune: the monotone set is
        // net-only, so their reports agree trivially.)
        for scenario in ["ksa-net", "fragile-commit"] {
            let mut config = SweepConfig::new(scenario);
            config.depth = if scenario == "ksa-net" { 2 } else { 1 };
            config.seeds_per_plan = 1;
            config.shrink = false;
            config.threads = Some(4);
            config.prune = false;
            let full = sweep(&config);
            config.prune = true;
            let pruned = sweep(&config);
            assert_eq!(
                Json::Arr(full.violations.iter().map(Violation::to_json).collect()).to_string(),
                Json::Arr(pruned.violations.iter().map(Violation::to_json).collect())
                    .to_string(),
                "{scenario}"
            );
            assert_eq!(full.plans, pruned.plans, "{scenario}");
            assert_eq!(full.plans_pruned, 0, "{scenario}");
            assert_eq!(full.plans_run, full.plans, "{scenario}");
            assert_eq!(pruned.plans_run + pruned.plans_pruned, pruned.plans, "{scenario}");
            if scenario == "ksa-net" {
                assert!(pruned.plans_pruned > 0, "net menus must actually prune");
            } else {
                assert_eq!(pruned.plans_pruned, 0, "shm menus must never prune");
            }
            // The prune accounting is in the metrics snapshot too.
            assert_eq!(
                pruned.metrics.counter("sweep_plans_generated"),
                Some(pruned.plans as u64)
            );
            assert_eq!(
                pruned.metrics.counter("sweep_plans_pruned"),
                Some(pruned.plans_pruned as u64)
            );
            assert_eq!(pruned.metrics.counter("sweep_plans_run"), Some(pruned.plans_run as u64));
        }
    }

    #[test]
    fn pruned_net_sweep_is_thread_count_invariant() {
        // Wave barriers make the prune decisions independent of the worker
        // count; the canonical report and merged metrics must not move.
        let mut config = SweepConfig::new("ksa-net");
        config.depth = 2;
        config.seeds_per_plan = 1;
        config.shrink = false;
        config.threads = Some(1);
        let serial = sweep(&config);
        config.threads = Some(8);
        let parallel = sweep(&config);
        assert_eq!(serial.to_json().to_string(), parallel.to_json().to_string());
        assert_eq!(serial.metrics.to_json().to_string(), parallel.metrics.to_json().to_string());
    }

    #[test]
    fn gossip_sweeps_never_dominance_prune() {
        // Loss is not monotone over gossip (it changes observed values via
        // staleness), so the pruned and unpruned sweeps must run the exact
        // same plan set and produce byte-identical reports.
        let mut config = SweepConfig::new("ksa-net-gossip");
        config.depth = 1;
        config.seeds_per_plan = 1;
        config.shrink = false;
        config.threads = Some(4);
        config.prune = false;
        let full = sweep(&config);
        config.prune = true;
        let gated = sweep(&config);
        assert_eq!(full.to_json().to_string(), gated.to_json().to_string());
        assert_eq!(full.plans_run, gated.plans_run, "gossip must not dominance-prune");
    }

    #[test]
    fn plan_budget_truncates_deterministically() {
        let mut config = SweepConfig::new("fragile-commit");
        config.depth = 1;
        config.seeds_per_plan = 1;
        config.shrink = false;
        config.threads = Some(2);
        config.plan_budget = 5;
        let a = sweep(&config);
        let b = sweep(&config);
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        assert_eq!(a.plans_run, 5);
        assert_eq!(a.plans_pruned, a.plans - 5);
        assert_eq!(a.runs, 5);
    }

    #[test]
    fn sweep_finds_fragile_commit_violations() {
        let mut config = SweepConfig::new("fragile-commit");
        config.depth = 1;
        config.seeds_per_plan = 4;
        config.shrink = false;
        config.threads = Some(4);
        let report = sweep(&config);
        assert!(report.count_kind(|k| matches!(k, ViolationKind::Safety { .. })) > 0);
    }

    #[test]
    fn sweep_finds_wait_freedom_violations() {
        let mut config = SweepConfig::new("wait-for-all");
        config.depth = 1;
        config.seeds_per_plan = 1;
        config.shrink = false;
        config.threads = Some(2);
        let report = sweep(&config);
        assert!(report.count_kind(|k| matches!(k, ViolationKind::WaitFreedom { .. })) > 0);
        // And no safety violations: wait-for-all is safe, just not live.
        assert_eq!(report.count_kind(|k| matches!(k, ViolationKind::Safety { .. })), 0);
    }
}
