//! Systematic fault sweeps: bounded-DFS plan search, panic-isolated
//! parallel evaluation, deterministic reports.
//!
//! [`PlanSearch`] *enumerates* fault plans (every combination of up to
//! `depth` atomic faults from a scenario-derived menu) instead of sampling
//! them — the adversary is exhaustive within its bound, so a clean sweep is
//! a statement about a space, not a sample. [`sweep`] evaluates every
//! `(plan, seed)` job on a worker pool; each job runs under `catch_unwind`,
//! so one torn automaton becomes a [`ViolationKind::Panic`] entry in the
//! report instead of taking the sweep down.
//!
//! Determinism contract: job seeds derive from `(base_seed, job index)`,
//! results are assembled in job-index order, and the report serializes no
//! timing or thread information — `SweepReport::to_json` is byte-identical
//! for any worker count (`WFA_THREADS=1` vs `8` is CI-enforced).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use wfa_obs::metrics::{Counter, MetricsHandle, Snapshot};

use crate::json::Json;
use crate::plan::FaultPlan;
use crate::run::{payload_string, run_plan_observed};
use crate::scenario::Scenario;
use crate::shrink::shrink;
use crate::violation::{Violation, ViolationKind};

/// One atomic fault the search can add to a plan.
#[derive(Clone, PartialEq, Eq, Debug)]
enum Component {
    Crash(usize, u64),
    Stop(usize, u64),
    Lose(usize, u64),
    Freeze(usize, u64),
    Delay(u64),
    Clear(u64),
    NetPartition(usize, u64),
    NetDrop(usize, u64, u64),
    NetHeal(u64),
    /// Crash one replica at `.1`, recover it at `.2` (inside the recovery
    /// horizon, so the plan stays creditable).
    NetCrashRecover(usize, u64, u64),
    /// Crash replicas 0 and 1 at `.0`, recover both at `.1`: a majority
    /// blip the retransmission+re-sync machinery must absorb.
    NetBlip(u64, u64),
}

/// Bounded-DFS enumeration of fault plans for one scenario.
///
/// The component menu is derived from the scenario (crash/stop points per
/// process at `t ∈ {0, stab}`, sample loss and freezing, advice delay and a
/// clearing point); [`PlanSearch::plans`] returns every valid combination
/// of at most `depth` components, in a deterministic order starting with
/// the clean plan.
#[derive(Clone, Debug)]
pub struct PlanSearch {
    components: Vec<Component>,
    depth: usize,
    n: usize,
    net_nodes: usize,
}

impl PlanSearch {
    /// The search space for `sc` with the given combination bound.
    pub fn for_scenario(sc: &Scenario, depth: usize) -> PlanSearch {
        let mut components = Vec::new();
        let times = [0, sc.stab];
        for q in 0..sc.n {
            for t in times {
                components.push(Component::Crash(q, t));
            }
        }
        let max_p = sc.task.max_participants().min(sc.n);
        for i in 0..max_p {
            components.push(Component::Stop(i, 0));
        }
        for q in 0..sc.n {
            components.push(Component::Lose(q, 2));
            components.push(Component::Freeze(q, 3));
        }
        components.push(Component::Delay(sc.stab));
        components.push(Component::Clear(2 * sc.stab));
        if sc.net_nodes > 0 {
            // Single-replica partitions, bounded drop windows and
            // crash/recover pairs inside the recovery horizon: the
            // adversary stays inside (or creditably returns to) the ABD
            // majority assumption, so these probe the protocol's liveness
            // rather than exceed its model (majority-breaking plans are
            // built by hand, not swept — the all-crash exclusion's
            // analogue).
            let rh = wfa_net::config::NetConfig::new(sc.net_nodes, 0).recovery_horizon();
            for node in 0..sc.net_nodes {
                components.push(Component::NetPartition(node, sc.stab));
                components.push(Component::NetDrop(node, 0, sc.stab));
                components.push(Component::NetCrashRecover(node, sc.stab, sc.stab + rh));
            }
            components.push(Component::NetHeal(2 * sc.stab));
            if sc.net_nodes >= 3 {
                components.push(Component::NetBlip(2 * sc.stab, 2 * sc.stab + rh));
            }
        }
        PlanSearch { components, depth, n: sc.n, net_nodes: sc.net_nodes }
    }

    /// Every valid plan with at most `depth` components (clean plan first).
    pub fn plans(&self) -> Vec<FaultPlan> {
        let mut out = vec![FaultPlan::clean()];
        let mut combo = Vec::new();
        self.dfs(0, &mut combo, &mut out);
        out
    }

    fn dfs(&self, from: usize, combo: &mut Vec<usize>, out: &mut Vec<FaultPlan>) {
        if combo.len() >= self.depth {
            return;
        }
        for idx in from..self.components.len() {
            combo.push(idx);
            if let Some(plan) = self.build(combo) {
                out.push(plan);
                self.dfs(idx + 1, combo, out);
            }
            combo.pop();
        }
    }

    /// Builds the plan for a component combination, or `None` if invalid
    /// (all S-processes crashed, a process FD-faulted twice, a duplicate
    /// crash/stop target, a delay repeated, or a clear with nothing to
    /// clear).
    fn build(&self, combo: &[usize]) -> Option<FaultPlan> {
        let mut plan = FaultPlan::clean();
        for idx in combo {
            match &self.components[*idx] {
                Component::Crash(q, t) => {
                    if plan.crashes.iter().any(|(cq, _)| cq == q) {
                        return None;
                    }
                    plan = plan.crash_s(*q, *t);
                }
                Component::Stop(i, t) => {
                    if plan.stops.iter().any(|(si, _)| si == i) {
                        return None;
                    }
                    plan = plan.stop_c(*i, *t);
                }
                Component::Lose(q, p) => {
                    if plan.fd_faults.iter().any(|f| f.q() == *q) {
                        return None;
                    }
                    plan = plan.lose(*q, *p);
                }
                Component::Freeze(q, p) => {
                    if plan.fd_faults.iter().any(|f| f.q() == *q) {
                        return None;
                    }
                    plan = plan.freeze(*q, *p);
                }
                Component::Delay(d) => {
                    if plan.advice_delay > 0 {
                        return None;
                    }
                    plan = plan.delay_advice(*d);
                }
                Component::Clear(t) => {
                    if plan.clear_after.is_some()
                        || (plan.fd_faults.is_empty() && plan.advice_delay == 0)
                    {
                        return None;
                    }
                    plan = plan.clear_at(*t);
                }
                Component::NetPartition(node, t) => {
                    if plan
                        .net_faults
                        .iter()
                        .any(|f| matches!(f, wfa_net::config::NetFault::Partition { .. }))
                    {
                        return None;
                    }
                    plan = plan.partition(vec![*node], *t);
                }
                Component::NetDrop(node, at, until) => {
                    if plan.net_faults.iter().any(
                        |f| matches!(f, wfa_net::config::NetFault::Drop { node: d, .. } if d == node),
                    ) {
                        return None;
                    }
                    plan = plan.drop_link(*node, *at, *until);
                }
                Component::NetHeal(t) => {
                    let has_partition = plan
                        .net_faults
                        .iter()
                        .any(|f| matches!(f, wfa_net::config::NetFault::Partition { .. }));
                    let has_heal = plan
                        .net_faults
                        .iter()
                        .any(|f| matches!(f, wfa_net::config::NetFault::Heal { .. }));
                    if !has_partition || has_heal {
                        return None;
                    }
                    plan = plan.heal(*t);
                }
                Component::NetCrashRecover(node, at, rec) => {
                    if plan.net_faults.iter().any(|f| {
                        matches!(f, wfa_net::config::NetFault::CrashReplica { node: n, .. } if n == node)
                    }) {
                        return None;
                    }
                    plan = plan.crash_replica(*node, *at).recover_replica(*node, *rec);
                }
                Component::NetBlip(at, rec) => {
                    if plan
                        .net_faults
                        .iter()
                        .any(|f| matches!(f, wfa_net::config::NetFault::CrashReplica { .. }))
                    {
                        return None;
                    }
                    plan = plan
                        .crash_replica(0, *at)
                        .crash_replica(1, *at)
                        .recover_replica(0, *rec)
                        .recover_replica(1, *rec);
                }
            }
        }
        if plan.crashes.len() >= self.n {
            return None;
        }
        // The search never exceeds the ABD model: every emitted plan keeps a
        // reachable majority (the all-crash exclusion's network analogue).
        if self.net_nodes > 0 && !plan.net_majority_safe(self.net_nodes) {
            return None;
        }
        Some(plan)
    }
}

/// Configuration of one fault sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// The scenario to sweep ([`Scenario::by_name`]).
    pub scenario: String,
    /// Combination bound for [`PlanSearch`].
    pub depth: usize,
    /// Seeds evaluated per plan.
    pub seeds_per_plan: u64,
    /// Base seed (job seeds derive from it deterministically).
    pub base_seed: u64,
    /// Shrink violations before reporting.
    pub shrink: bool,
    /// Worker threads; `None` reads `WFA_THREADS` (default 1).
    pub threads: Option<usize>,
}

impl SweepConfig {
    /// A small default sweep of `scenario`: depth 2, 2 seeds per plan.
    pub fn new(scenario: &str) -> SweepConfig {
        SweepConfig {
            scenario: scenario.to_string(),
            depth: 2,
            seeds_per_plan: 2,
            base_seed: 1,
            shrink: true,
            threads: None,
        }
    }

    /// The resolved worker count.
    pub fn resolved_threads(&self) -> usize {
        self.threads
            .or_else(|| std::env::var("WFA_THREADS").ok().and_then(|s| s.parse().ok()))
            .unwrap_or(1)
            .max(1)
    }
}

/// The deterministic outcome of a fault sweep.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The swept scenario.
    pub scenario: String,
    /// Plans enumerated by the search.
    pub plans: usize,
    /// `(plan, seed)` jobs evaluated.
    pub runs: usize,
    /// All violations, in job order (shrunk if configured); panics appear
    /// here as [`ViolationKind::Panic`] entries.
    pub violations: Vec<Violation>,
    /// The canonical metrics snapshot: each job records into its own
    /// registry (shard-per-job, no cross-thread contention) and the
    /// per-job snapshots are merged in job-index order, so the result is
    /// worker-count invariant. Not part of [`SweepReport::to_json`], whose
    /// byte format predates the observability layer; export it through
    /// [`Snapshot::to_json`] instead.
    pub metrics: Snapshot,
}

impl SweepReport {
    /// Violations of a given broad kind.
    pub fn count_kind(&self, pred: impl Fn(&ViolationKind) -> bool) -> usize {
        self.violations.iter().filter(|v| pred(&v.kind)).count()
    }

    /// Canonical serialization — byte-identical across worker counts.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scenario".into(), Json::Str(self.scenario.clone())),
            ("plans".into(), Json::Num(self.plans as u64)),
            ("runs".into(), Json::Num(self.runs as u64)),
            (
                "violations".into(),
                Json::Arr(self.violations.iter().map(Violation::to_json).collect()),
            ),
        ])
    }
}

/// The seed for job `idx` of a sweep (the ensemble derivation, reused).
pub fn job_seed(base: u64, idx: usize) -> u64 {
    base.wrapping_mul(1_000_003).wrapping_add(idx as u64)
}

/// Runs one sweep: enumerates plans, evaluates every `(plan, seed)` job on
/// `resolved_threads()` workers with per-job panic isolation, and returns
/// the violations in deterministic job order.
///
/// # Panics
///
/// Panics only if the scenario name is unknown — never because a *run*
/// panicked (those become [`ViolationKind::Panic`] violations).
pub fn sweep(config: &SweepConfig) -> SweepReport {
    let sc = Scenario::by_name(&config.scenario)
        .unwrap_or_else(|| panic!("unknown scenario `{}`", config.scenario));
    let plans = PlanSearch::for_scenario(&sc, config.depth).plans();
    let jobs: Vec<(usize, &FaultPlan, u64)> = plans
        .iter()
        .enumerate()
        .flat_map(|(pi, plan)| {
            (0..config.seeds_per_plan)
                .map(move |s| (pi, plan, s))
                .collect::<Vec<_>>()
        })
        .enumerate()
        .map(|(idx, (_pi, plan, _s))| (idx, plan, job_seed(config.base_seed, idx)))
        .collect();

    // What a finished job deposits in its index slot: the violations it
    // found plus its private registry's snapshot.
    type JobResult = (Vec<Violation>, Snapshot);
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<JobResult>>> = Mutex::new(vec![None; jobs.len()]);
    let workers = config.resolved_threads().min(jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((idx, plan, seed)) = jobs.get(i).copied() else {
                    return;
                };
                // One registry per job, created outside `catch_unwind`: a
                // panicking run still reports the counters it reached (the
                // same prefix on every re-execution, so still deterministic).
                let obs = MetricsHandle::counters();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut vs = run_plan_observed(&sc, plan, seed, &obs).violations;
                    if config.shrink {
                        for v in &mut vs {
                            obs.add(Counter::ShrinkReplays, shrink(v) as u64);
                        }
                    }
                    vs
                }));
                let vs = result.unwrap_or_else(|payload| {
                    vec![Violation {
                        scenario: sc.name.clone(),
                        seed,
                        plan: plan.clone(),
                        kind: ViolationKind::Panic { payload: payload_string(payload.as_ref()) },
                        schedule: Vec::new(),
                        original_len: 0,
                    }]
                });
                obs.bump(Counter::SweepJobs);
                obs.add(Counter::SweepViolations, vs.len() as u64);
                let snap = obs.snapshot().expect("job registry is enabled");
                slots.lock().expect("slot lock")[idx] = Some((vs, snap));
            });
        }
    });

    let mut metrics = Snapshot::default();
    let mut violations = Vec::new();
    for slot in slots.into_inner().expect("slot lock") {
        let (vs, snap) = slot.expect("every job filled its slot");
        violations.extend(vs);
        metrics.merge(&snap);
    }
    SweepReport { scenario: sc.name, plans: plans.len(), runs: jobs.len(), violations, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FdFault;

    #[test]
    fn plan_search_is_bounded_and_valid() {
        let sc = Scenario::adopt_commit();
        let search = PlanSearch::for_scenario(&sc, 2);
        let plans = search.plans();
        assert_eq!(plans[0], FaultPlan::clean());
        assert!(plans.len() > 20, "space too small: {}", plans.len());
        for p in &plans {
            assert!(p.crashes.len() < sc.n, "all-crash plan: {}", p.describe());
            // At most one FD fault per process.
            for f in &p.fd_faults {
                assert_eq!(p.fd_faults.iter().filter(|g| g.q() == f.q()).count(), 1);
            }
        }
        // Depth 0 is just the clean plan; depth grows the space.
        assert_eq!(PlanSearch::for_scenario(&sc, 0).plans().len(), 1);
        let d1 = PlanSearch::for_scenario(&sc, 1).plans().len();
        assert!(d1 > 1 && d1 < plans.len());
    }

    #[test]
    fn search_covers_crash_and_delay_combinations() {
        let sc = Scenario::ksa();
        let plans = PlanSearch::for_scenario(&sc, 2).plans();
        assert!(plans.iter().any(|p| !p.crashes.is_empty() && p.advice_delay > 0));
        assert!(plans
            .iter()
            .any(|p| matches!(p.fd_faults.first(), Some(FdFault::Lose { .. }))
                && p.clear_after.is_some()));
    }

    #[test]
    fn net_scenarios_sweep_majority_safe_network_plans() {
        use wfa_net::config::NetFault;

        let sc = Scenario::ksa_net();
        let plans = PlanSearch::for_scenario(&sc, 2).plans();
        // The menu actually contributes: partitions, drops and a heal show
        // up, and heals only ever ride along with a partition.
        assert!(plans
            .iter()
            .any(|p| p.net_faults.iter().any(|f| matches!(f, NetFault::Partition { .. }))));
        assert!(plans
            .iter()
            .any(|p| p.net_faults.iter().any(|f| matches!(f, NetFault::Drop { .. }))));
        assert!(plans
            .iter()
            .any(|p| p.net_faults.iter().any(|f| matches!(f, NetFault::Heal { .. }))));
        assert!(plans
            .iter()
            .any(|p| p.net_faults.iter().any(|f| matches!(f, NetFault::CrashReplica { .. }))));
        assert!(plans
            .iter()
            .any(|p| p.net_faults.iter().any(|f| matches!(f, NetFault::RecoverReplica { .. }))));
        for p in &plans {
            assert!(p.net_majority_safe(sc.net_nodes), "model-exceeding plan: {}", p.describe());
            // Every swept crash carries its recovery — the menu only offers
            // creditable pairs.
            for f in &p.net_faults {
                if let NetFault::CrashReplica { node, .. } = f {
                    assert!(
                        p.net_faults
                            .iter()
                            .any(|g| matches!(g, NetFault::RecoverReplica { node: r, .. } if r == node)),
                        "unrecovered swept crash: {}",
                        p.describe()
                    );
                }
            }
            if p.net_faults.iter().any(|f| matches!(f, NetFault::Heal { .. })) {
                assert!(
                    p.net_faults.iter().any(|f| matches!(f, NetFault::Partition { .. })),
                    "heal with nothing to heal: {}",
                    p.describe()
                );
            }
        }
        // Shared-memory scenarios get no network components.
        assert!(PlanSearch::for_scenario(&Scenario::ksa(), 2)
            .plans()
            .iter()
            .all(|p| p.net_faults.is_empty()));
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let mut config = SweepConfig::new("fragile-commit");
        config.depth = 1;
        config.seeds_per_plan = 2;
        config.shrink = false; // keep the test fast; shrinking is deterministic anyway
        config.threads = Some(1);
        let serial = sweep(&config);
        config.threads = Some(8);
        let parallel = sweep(&config);
        assert_eq!(serial.to_json().to_string(), parallel.to_json().to_string());
        // The merged metrics snapshot is part of the determinism contract.
        assert_eq!(
            serial.metrics.to_json().to_string(),
            parallel.metrics.to_json().to_string()
        );
        assert_eq!(serial.metrics.counter("sweep_jobs"), Some(serial.runs as u64));
        assert_eq!(
            serial.metrics.counter("sweep_violations"),
            Some(serial.violations.len() as u64)
        );
        assert!(serial.metrics.counter("schedule_slots").unwrap_or(0) > 0);
    }

    #[test]
    fn sweep_finds_fragile_commit_violations() {
        let mut config = SweepConfig::new("fragile-commit");
        config.depth = 1;
        config.seeds_per_plan = 4;
        config.shrink = false;
        config.threads = Some(4);
        let report = sweep(&config);
        assert!(report.count_kind(|k| matches!(k, ViolationKind::Safety { .. })) > 0);
    }

    #[test]
    fn sweep_finds_wait_freedom_violations() {
        let mut config = SweepConfig::new("wait-for-all");
        config.depth = 1;
        config.seeds_per_plan = 1;
        config.shrink = false;
        config.threads = Some(2);
        let report = sweep(&config);
        assert!(report.count_kind(|k| matches!(k, ViolationKind::WaitFreedom { .. })) > 0);
        // And no safety violations: wait-for-all is safe, just not live.
        assert_eq!(report.count_kind(|k| matches!(k, ViolationKind::Safety { .. })), 0);
    }
}
