//! Chaos-soak engine: deterministic long-horizon fault soaking with
//! checkpointed replay.
//!
//! Where [`crate::sweep`] *searches* small fault plans exhaustively, the
//! chaos engine *soaks*: one long run (10k+ backend ticks) per backend with
//! a seeded stream of composed faults drawn from a per-backend menu —
//! replica crash/recover pairs (under the configured durability), minority
//! partitions with heals, loss/dup/corrupt windows, and — in storm phases —
//! heal-bounded majority partitions that are *expected* to degrade and then
//! recover. Read-only freeze windows model frozen failure detectors and
//! delayed advice uniformly across backends (on shared memory they are the
//! whole menu). Faults are pre-generated into an explicit [`NetFault`]
//! timeline before the backend is built, so a soak is a pure function of
//! its [`SoakConfig`]: same config, byte-identical [`SoakReport`], any
//! thread count.
//!
//! **Online oracles** check invariants continuously while the soak runs:
//!
//! * *model equality* — every shm/net read must equal a register-file model
//!   of the op stream (the net backend's linearized view keeps serving shm
//!   semantics even while degraded);
//! * *no fabricated reads* — a gossip read may be stale (an older value for
//!   that key, or `⊥`) but never a value nobody wrote;
//! * *quorum safety* — a `quorum-lost` degradation is a violation unless
//!   its tick falls inside the expected envelope of a heal-bounded majority
//!   partition ([`expected_envelopes`]);
//! * *convergence on quiescence* + *causal replay* — after the op stream
//!   ends, the gossip cluster must converge within `3n + 8` anti-entropy
//!   rounds and every replica state must be the causal replay of its
//!   delivered deltas;
//! * *degradation lifecycle* — every degraded spell must have resolved by
//!   the end of the run; the resolutions become the report's `recoveries`
//!   array and its MTTR table.
//!
//! **Flight recorder.** Every `checkpoint_every` ops the engine snapshots
//! the whole backend + model into a bounded ring. On violation it replays
//! from the last checkpoint — not from tick 0 — and certifies that the
//! violation reproduces there ([`ReplayInfo`]). Artifacts shrink by
//! dropping whole fault windows ([`shrink_soak`]) while the violation
//! keeps reproducing, the same greedy discipline as [`crate::shrink`].

use std::collections::BTreeMap;

use wfa_gossip::backend::GossipBackend;
use wfa_gossip::config::GossipConfig;
use wfa_kernel::backend::{DegradationKind, MemoryBackend, Resolution};
use wfa_kernel::memory::{RegKey, SharedMemory};
use wfa_kernel::value::{Pid, Value};
use wfa_net::abd::AbdBackend;
use wfa_net::config::{Durability, NetConfig, NetFault};
use wfa_net::runtime::mix;
use wfa_obs::local as obs_local;
use wfa_obs::metrics::{MetricsHandle, Snapshot};

use crate::json::Json;

/// Registers the soak op stream cycles over (spread across every gossip
/// home replica by `RegKey::shard_index`).
const KEYS: usize = 8;

/// Flight-recorder capacity: checkpoints kept in the copy-on-write ring.
const RECORDER_SLOTS: usize = 8;

/// Re-soak budget for [`shrink_soak`].
const MAX_SOAK_REPLAYS: usize = 64;

/// Ticks a gossip stale-advice window spends partitioned-but-alive before
/// the crash: long enough for a couple of ops' writes to jam at the home.
const STALE_PRE: u64 = 64;

/// How far ahead of a scheduled replica crash the gossip op stream steers
/// its writes toward keys the doomed replica homes (see [`Engine::step`]).
const STALE_APPROACH: u64 = 160;

/// Salt for fault-window draws.
const FAULT_SALT: u64 = 0x5b1c_9e3d_a770_42f1;
/// Salt for freeze-window draws.
const FREEZE_SALT: u64 = 0x93ae_4cf0_6b21_8d5b;
/// Salt for the net durability draw.
const DURABILITY_SALT: u64 = 0xc6a4_a793_5bd1_e995;

/// Which register substrate a soak drives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SoakBackend {
    /// In-process `SharedMemory` (fault menu: freeze windows only).
    Shm,
    /// The ABD quorum emulation (`wfa-net`).
    Net,
    /// The delta-CRDT anti-entropy substrate (`wfa-gossip`).
    Gossip,
}

impl SoakBackend {
    /// Stable name used by the CLI and JSON encodings.
    pub fn name(&self) -> &'static str {
        match self {
            SoakBackend::Shm => "shm",
            SoakBackend::Net => "net",
            SoakBackend::Gossip => "gossip",
        }
    }

    /// Parses a CLI/JSON name.
    pub fn parse(s: &str) -> Option<SoakBackend> {
        match s {
            "shm" => Some(SoakBackend::Shm),
            "net" => Some(SoakBackend::Net),
            "gossip" => Some(SoakBackend::Gossip),
            _ => None,
        }
    }
}

/// How dense the generated fault stream is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Intensity {
    /// Sparse minority-safe faults with long healthy gaps.
    Calm,
    /// Dense windows, including heal-bounded majority partitions (the
    /// expected-degradation class that feeds the MTTR table).
    Storm,
    /// Alternating calm and storm segments (the default).
    Mixed,
}

impl Intensity {
    /// Stable name used by the CLI and JSON encodings.
    pub fn name(&self) -> &'static str {
        match self {
            Intensity::Calm => "calm",
            Intensity::Storm => "storm",
            Intensity::Mixed => "mixed",
        }
    }

    /// Parses a CLI/JSON name.
    pub fn parse(s: &str) -> Option<Intensity> {
        match s {
            "calm" => Some(Intensity::Calm),
            "storm" => Some(Intensity::Storm),
            "mixed" => Some(Intensity::Mixed),
            _ => None,
        }
    }
}

/// Everything that determines a soak. Two equal configs produce
/// byte-identical reports on any machine and any `WFA_THREADS` value — the
/// engine is single-threaded and consults no ambient state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SoakConfig {
    /// The backend under soak.
    pub backend: SoakBackend,
    /// Backend-tick horizon: ops are driven until the backend clock passes
    /// it (for `shm`, one op is one tick).
    pub ticks: u64,
    /// Seed for the fault timeline, freeze windows, durability draw and
    /// the backend's own network delays.
    pub seed: u64,
    /// Fault-stream density.
    pub intensity: Intensity,
    /// Ops between flight-recorder checkpoints (`0` disables the recorder
    /// — violations then offer no resume point).
    pub checkpoint_every: u64,
    /// Replica count for net/gossip (ignored by shm).
    pub nodes: usize,
    /// Append one deterministic *bug* to the timeline: an unhealed
    /// majority partition at 85% of the horizon (net/gossip), or a model
    /// write skipped at 85% of the op stream (shm). Used to exercise the
    /// violation → checkpoint-replay → shrink path on demand.
    pub inject_bug: bool,
}

impl SoakConfig {
    /// The default soak for `backend`: 2000 ticks, seed 1, mixed
    /// intensity, a checkpoint every 64 ops, 4 replicas, no injected bug.
    pub fn new(backend: SoakBackend) -> SoakConfig {
        SoakConfig {
            backend,
            ticks: 2_000,
            seed: 1,
            intensity: Intensity::Mixed,
            checkpoint_every: 64,
            nodes: 4,
            inject_bug: false,
        }
    }
}

/// The pre-generated fault material for one soak: an explicit network
/// fault list (empty for shm), read-only freeze windows in backend-tick
/// space, and the optional shm model-write bug op. Artifacts carry all
/// three so a shrunken artifact replays exactly what it says.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Timeline {
    /// Timed network faults handed to the backend config.
    pub faults: Vec<NetFault>,
    /// `[start, end)` backend-tick windows during which the op stream
    /// issues only reads (frozen detectors / delayed advice).
    pub freezes: Vec<(u64, u64)>,
    /// Op index whose write skips the model (the shm injected bug).
    pub bug_op: Option<u64>,
}

/// Draws the net backend's durability policy from the soak seed — a pure
/// function, so replays agree without storing more than the seed.
pub fn draw_durability(seed: u64) -> Durability {
    let d = mix(seed ^ DURABILITY_SALT);
    match d % 3 {
        0 => Durability::Volatile,
        1 => Durability::Durable,
        _ => Durability::PrefixDurable(1 + (d >> 8) % 8),
    }
}

/// Generates the seeded fault timeline for `cfg`: serialized
/// (non-overlapping) windows from tick 60 to 80% of the horizon, each
/// drawn from the intensity-dependent menu, plus sparse freeze windows.
/// Every generated window is majority-safe except the storm menu's
/// heal-bounded majority partitions, whose degradations are *expected*
/// (see [`expected_envelopes`]); gaps after those are long enough for the
/// spell to resolve before the next window opens.
pub fn timeline(cfg: &SoakConfig) -> Timeline {
    let mut tl = Timeline::default();
    let ticks = cfg.ticks;
    // Freeze windows ride every backend: three short read-only spells
    // spread across the run.
    for i in 0..3u64 {
        let d = mix(cfg.seed ^ FREEZE_SALT ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let start = ticks * (2 * i + 1) / 8 + d % (ticks / 16 + 1);
        let len = 10 + (d >> 16) % (ticks / 32 + 1);
        tl.freezes.push((start, start + len));
    }
    if cfg.backend == SoakBackend::Shm {
        if cfg.inject_bug {
            // Snapped to the next write op (the stream writes on every
            // third op) — a bug on a read op would be a no-op.
            let b = ticks * 85 / 100;
            tl.bug_op = Some(b + (3 - b % 3) % 3);
        }
        return tl;
    }
    let n = cfg.nodes;
    let quorum = n / 2 + 1;
    let gossip = cfg.backend == SoakBackend::Gossip;
    let horizon = NetConfig::new(n, cfg.seed).retransmission_horizon();
    let seg = (ticks / 6).max(1);
    let storm_at = |tick: u64| match cfg.intensity {
        Intensity::Calm => false,
        Intensity::Storm => true,
        Intensity::Mixed => (tick / seg) % 2 == 1,
    };
    let mut cursor = 60u64;
    let end = ticks * 8 / 10;
    let mut w = 0u64;
    while cursor < end {
        let d1 = mix(cfg.seed ^ FAULT_SALT ^ w.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let d2 = mix(d1);
        let d3 = mix(d2);
        let node = (d1 % n as u64) as usize;
        let storm = storm_at(cursor);
        // Gossip windows are stretched: one anti-entropy round runs per op
        // and an op spans ~25-30 backend ticks, so a downed home must stay
        // down for hundreds of ticks to cross the staleness horizon
        // (which is measured in rounds).
        let dur = if gossip {
            if storm { 380 + d2 % 160 } else { 340 + d2 % 120 }
        } else if storm {
            40 + d2 % 80
        } else {
            20 + d2 % 30
        };
        let kind = d3 % if storm { 5 } else { 4 };
        let gap = match kind {
            // A majority partition needs its spell to resolve before the
            // next window: leave at least two horizons of healthy air.
            4 => 2 * horizon + 80 + d2 % 40,
            _ if storm => 30 + d1 % 50,
            _ => 80 + d1 % 120,
        };
        match kind {
            // Gossip swaps the crash and drop menus for a *composed*
            // stale-advice window: partition the home so fresh deltas jam
            // inside it, crash it (the jammed deltas become unreachable),
            // heal the fabric so the fallback serves — stale — past the
            // horizon, then recover the home to close the spell. Each
            // window is one measurable advice-stale MTTR sample.
            0 | 2 if gossip => {
                tl.faults.push(NetFault::Partition { at: cursor, nodes: vec![node] });
                tl.faults.push(NetFault::CrashReplica { at: cursor + STALE_PRE, node });
                tl.faults.push(NetFault::Heal { at: cursor + STALE_PRE + 1 });
                tl.faults.push(NetFault::RecoverReplica { at: cursor + dur, node });
            }
            0 => {
                tl.faults.push(NetFault::CrashReplica { at: cursor, node });
                tl.faults.push(NetFault::RecoverReplica { at: cursor + dur, node });
            }
            1 => {
                tl.faults.push(NetFault::Partition { at: cursor, nodes: vec![node] });
                tl.faults.push(NetFault::Heal { at: cursor + dur });
            }
            2 => tl.faults.push(NetFault::Drop { at: cursor, until: cursor + dur, node }),
            3 => tl.faults.push(NetFault::CorruptMessage { at: cursor, until: cursor + dur, node }),
            _ => {
                // Storm only: isolate just enough replicas to break the
                // majority, heal inside the window — quorum ops degrade,
                // then the half-open probe recovers them (an MTTR sample).
                let cut: Vec<usize> =
                    (0..n - quorum + 1).map(|i| (node + i) % n).collect();
                tl.faults.push(NetFault::Partition { at: cursor, nodes: cut });
                tl.faults.push(NetFault::Heal { at: cursor + dur });
            }
        }
        cursor += dur + gap;
        w += 1;
    }
    if cfg.inject_bug {
        // The injected bug: a majority-breaking partition after the last
        // generated window, never healed. Net soaks degrade outside every
        // expected envelope; gossip soaks fail convergence-on-quiescence.
        let cut: Vec<usize> = (0..n - quorum + 1).collect();
        tl.faults.push(NetFault::Partition { at: ticks * 85 / 100, nodes: cut });
    }
    tl
}

/// Tick envelopes inside which `quorum-lost` degradations are *expected*:
/// one per majority-breaking partition that a later heal bounds, spanning
/// `[at, heal + 2·horizon + 32)`. Derived from the fault list alone — the
/// same derivation serves generation, replay and shrinking, so an
/// artifact's faults are the single source of truth. An unhealed majority
/// partition contributes no envelope: its degradations are violations.
pub fn expected_envelopes(faults: &[NetFault], nodes: usize) -> Vec<(u64, u64)> {
    let quorum = nodes / 2 + 1;
    let slack = 2 * NetConfig::new(nodes, 0).retransmission_horizon() + 32;
    let mut out = Vec::new();
    for f in faults {
        if let NetFault::Partition { at, nodes: cut } = f {
            if nodes - cut.len().min(nodes) < quorum {
                let heal = faults
                    .iter()
                    .filter_map(|g| match g {
                        NetFault::Heal { at: h } if h > at => Some(*h),
                        _ => None,
                    })
                    .min();
                if let Some(h) = heal {
                    out.push((*at, h + slack));
                }
            }
        }
    }
    out
}

/// The register-file model the oracles compare against.
#[derive(Clone, Debug)]
struct Model {
    /// Last value written per key (shm/net equality oracle).
    vals: Vec<Value>,
    /// Every value ever written per key (gossip staleness oracle: a stale
    /// read must still be one of these, or `⊥`).
    seen: Vec<Vec<Value>>,
}

impl Model {
    fn new() -> Model {
        Model { vals: vec![Value::Unit; KEYS], seen: vec![Vec::new(); KEYS] }
    }
}

/// The backend under soak, driven directly (no executor in the loop — the
/// op stream *is* the schedule).
#[derive(Clone, Debug)]
enum Driven {
    Shm(SharedMemory),
    Net(Box<AbdBackend>),
    Gossip(Box<GossipBackend>),
}

impl Driven {
    fn build(cfg: &SoakConfig, faults: &[NetFault]) -> Driven {
        match cfg.backend {
            SoakBackend::Shm => Driven::Shm(SharedMemory::new()),
            SoakBackend::Net => {
                let mut c = NetConfig::new(cfg.nodes, cfg.seed ^ 0x7e7);
                c.durability = draw_durability(cfg.seed);
                c.faults = faults.to_vec();
                Driven::Net(Box::new(AbdBackend::new(c)))
            }
            SoakBackend::Gossip => {
                let mut gc = GossipConfig::new(cfg.nodes, cfg.seed ^ 0x7e7);
                gc.net.faults = faults.to_vec();
                Driven::Gossip(Box::new(GossipBackend::new(gc)))
            }
        }
    }

    fn read(&mut self, me: Pid, now: u64, key: RegKey) -> Value {
        match self {
            Driven::Shm(m) => m.read(key),
            Driven::Net(b) => b.read(me, now, key),
            Driven::Gossip(g) => g.read(me, now, key),
        }
    }

    fn write(&mut self, me: Pid, now: u64, key: RegKey, val: Value) {
        match self {
            Driven::Shm(m) => m.write(key, val),
            Driven::Net(b) => b.write(me, now, key, val),
            Driven::Gossip(g) => g.write(me, now, key, val),
        }
    }

    /// The soak clock: backend ticks for net/gossip, ops for shm.
    fn tick(&self, ops: u64) -> u64 {
        match self {
            Driven::Shm(_) => ops,
            Driven::Net(b) => b.runtime().now(),
            Driven::Gossip(g) => g.runtime().now(),
        }
    }

    fn drain_degradations(&mut self) -> Vec<wfa_kernel::backend::Degradation> {
        match self {
            Driven::Shm(_) => Vec::new(),
            Driven::Net(b) => b.drain_degradations(),
            Driven::Gossip(g) => g.drain_degradations(),
        }
    }

    fn drain_resolutions(&mut self) -> Vec<Resolution> {
        match self {
            Driven::Shm(_) => Vec::new(),
            Driven::Net(b) => b.drain_resolutions(),
            Driven::Gossip(g) => g.drain_resolutions(),
        }
    }

    fn net_degraded(&self) -> bool {
        matches!(self, Driven::Net(b) if b.is_degraded())
    }
}

/// One checkpointable unit of soak state: the backend plus the oracle
/// model plus the op counter. Cloning it *is* taking a checkpoint.
#[derive(Clone, Debug)]
struct SoakState {
    driven: Driven,
    model: Model,
    ops: u64,
}

/// The soak register for key slot `kx`.
fn reg_key(kx: usize) -> RegKey {
    RegKey::new(29).at(0, kx as u32)
}

/// An oracle violation observed during a soak.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SoakViolation {
    /// Violation class: `quorum-lost`, `read-divergence`, `fabricated-read`,
    /// `gossip-divergence`, `causal-replay` or `unresolved-degradation`.
    pub kind: String,
    /// The op index at which the oracle fired.
    pub op: u64,
    /// Human-readable specifics.
    pub detail: String,
}

impl SoakViolation {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kind".into(), Json::Str(self.kind.clone())),
            ("op".into(), Json::Num(self.op)),
            ("detail".into(), Json::Str(self.detail.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<SoakViolation, String> {
        Ok(SoakViolation {
            kind: v.get("kind").and_then(Json::str).ok_or("violation: missing kind")?.to_string(),
            op: v.get("op").and_then(Json::num).ok_or("violation: missing op")?,
            detail: v.get("detail").and_then(Json::str).unwrap_or("").to_string(),
        })
    }
}

/// One closed degradation spell, as surfaced in soak reports and
/// `ksa --json` (`recoveries`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Recovery {
    /// The degradation class that resolved (`quorum-lost`/`advice-stale`).
    pub class: String,
    /// The replica group that recovered.
    pub shard: usize,
    /// Backend tick the spell opened.
    pub degrade_tick: u64,
    /// Backend tick the spell closed.
    pub resolve_tick: u64,
}

impl Recovery {
    fn of(r: &Resolution) -> Recovery {
        Recovery {
            class: r.kind.name().to_string(),
            shard: r.shard,
            degrade_tick: r.degrade_tick,
            resolve_tick: r.resolve_tick,
        }
    }

    /// Ticks the spell lasted.
    pub fn ttr(&self) -> u64 {
        self.resolve_tick.saturating_sub(self.degrade_tick)
    }

    /// Serializes the row (the `recoveries` array element shape).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("class".into(), Json::Str(self.class.clone())),
            ("shard".into(), Json::Num(self.shard as u64)),
            ("degrade_tick".into(), Json::Num(self.degrade_tick)),
            ("resolve_tick".into(), Json::Num(self.resolve_tick)),
        ])
    }

    /// Parses a row.
    pub fn from_json(v: &Json) -> Result<Recovery, String> {
        Ok(Recovery {
            class: v.get("class").and_then(Json::str).ok_or("recovery: missing class")?.into(),
            shard: v.get("shard").and_then(Json::num).unwrap_or(0) as usize,
            degrade_tick: v
                .get("degrade_tick")
                .and_then(Json::num)
                .ok_or("recovery: missing degrade_tick")?,
            resolve_tick: v
                .get("resolve_tick")
                .and_then(Json::num)
                .ok_or("recovery: missing resolve_tick")?,
        })
    }
}

/// Aggregated time-to-recovery per degradation class.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MttrRow {
    /// Degradation class.
    pub class: String,
    /// Spells resolved.
    pub count: u64,
    /// Shortest spell, in backend ticks.
    pub min: u64,
    /// Longest spell, in backend ticks.
    pub max: u64,
    /// Sum of spell lengths (mean = total / count).
    pub total: u64,
}

/// What the flight recorder did about a violation: where the replay
/// resumed and whether the violation reproduced from there.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReplayInfo {
    /// Op index of the checkpoint the replay resumed from.
    pub from_op: u64,
    /// Backend tick of that checkpoint.
    pub from_tick: u64,
    /// Ops re-executed until the verdict.
    pub replayed_ops: u64,
    /// Backend ticks re-executed until the verdict.
    pub replayed_ticks: u64,
    /// Whether the replay reached the same violation kind at the same op.
    pub reproduced: bool,
}

impl ReplayInfo {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("from_op".into(), Json::Num(self.from_op)),
            ("from_tick".into(), Json::Num(self.from_tick)),
            ("replayed_ops".into(), Json::Num(self.replayed_ops)),
            ("replayed_ticks".into(), Json::Num(self.replayed_ticks)),
            ("reproduced".into(), Json::Bool(self.reproduced)),
        ])
    }

    fn from_json(v: &Json) -> Result<ReplayInfo, String> {
        Ok(ReplayInfo {
            from_op: v.get("from_op").and_then(Json::num).ok_or("replay: missing from_op")?,
            from_tick: v.get("from_tick").and_then(Json::num).unwrap_or(0),
            replayed_ops: v
                .get("replayed_ops")
                .and_then(Json::num)
                .ok_or("replay: missing replayed_ops")?,
            replayed_ticks: v.get("replayed_ticks").and_then(Json::num).unwrap_or(0),
            reproduced: v.get("reproduced").and_then(Json::bool).unwrap_or(false),
        })
    }
}

/// The soak's complete, canonical result — also the replayable artifact
/// (`faults soak --out` writes its JSON; `faults replay` re-executes it).
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Config echo: backend name.
    pub backend: String,
    /// Config echo: tick horizon.
    pub ticks: u64,
    /// Config echo: seed.
    pub seed: u64,
    /// Config echo: intensity name.
    pub intensity: String,
    /// Config echo: checkpoint cadence.
    pub checkpoint_every: u64,
    /// Config echo: replica count.
    pub nodes: usize,
    /// Config echo: whether a bug was injected.
    pub inject_bug: bool,
    /// The net durability policy drawn from the seed (`-` off-net).
    pub durability: String,
    /// Ops the soak executed.
    pub ops: u64,
    /// The backend clock when the soak ended.
    pub final_tick: u64,
    /// The explicit fault timeline (the artifact's source of truth).
    pub faults: Vec<NetFault>,
    /// Read-only freeze windows.
    pub freezes: Vec<(u64, u64)>,
    /// The shm injected-bug op, if any.
    pub bug_op: Option<u64>,
    /// The oracle verdict (`None`: a clean soak).
    pub violation: Option<SoakViolation>,
    /// Every degradation spell that closed, in resolve order.
    pub recoveries: Vec<Recovery>,
    /// Time-to-recovery aggregation per degradation class.
    pub mttr: Vec<MttrRow>,
    /// Checkpoints the flight recorder took.
    pub checkpoints: u64,
    /// The checkpoint-replay certification, when a violation fired and the
    /// recorder held a resume point.
    pub replay: Option<ReplayInfo>,
    /// The run's canonical counter snapshot (the replay pass is excluded).
    pub metrics: Snapshot,
}

impl SoakReport {
    /// The [`SoakConfig`] this report echoes.
    ///
    /// # Errors
    ///
    /// Returns a description of the unknown backend/intensity name.
    pub fn config(&self) -> Result<SoakConfig, String> {
        Ok(SoakConfig {
            backend: SoakBackend::parse(&self.backend)
                .ok_or_else(|| format!("soak artifact: unknown backend `{}`", self.backend))?,
            ticks: self.ticks,
            seed: self.seed,
            intensity: Intensity::parse(&self.intensity)
                .ok_or_else(|| format!("soak artifact: unknown intensity `{}`", self.intensity))?,
            checkpoint_every: self.checkpoint_every,
            nodes: self.nodes,
            inject_bug: self.inject_bug,
        })
    }

    /// The [`Timeline`] this report carries (what a replay re-executes).
    pub fn timeline(&self) -> Timeline {
        Timeline {
            faults: self.faults.clone(),
            freezes: self.freezes.clone(),
            bug_op: self.bug_op,
        }
    }

    /// Serializes the report/artifact. Key order is fixed, so equal
    /// reports are byte-identical.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("command".into(), Json::Str("soak".into())),
            ("backend".into(), Json::Str(self.backend.clone())),
            ("ticks".into(), Json::Num(self.ticks)),
            ("seed".into(), Json::Num(self.seed)),
            ("intensity".into(), Json::Str(self.intensity.clone())),
            ("checkpoint_every".into(), Json::Num(self.checkpoint_every)),
            ("nodes".into(), Json::Num(self.nodes as u64)),
            ("inject_bug".into(), Json::Bool(self.inject_bug)),
            ("durability".into(), Json::Str(self.durability.clone())),
            ("ops".into(), Json::Num(self.ops)),
            ("final_tick".into(), Json::Num(self.final_tick)),
            ("faults".into(), Json::Arr(self.faults.iter().map(NetFault::to_json).collect())),
            (
                "freezes".into(),
                Json::Arr(
                    self.freezes
                        .iter()
                        .map(|(a, b)| Json::Arr(vec![Json::Num(*a), Json::Num(*b)]))
                        .collect(),
                ),
            ),
            ("bug_op".into(), self.bug_op.map_or(Json::Null, Json::Num)),
            ("violation".into(), self.violation.as_ref().map_or(Json::Null, SoakViolation::to_json)),
            ("recoveries".into(), Json::Arr(self.recoveries.iter().map(Recovery::to_json).collect())),
            (
                "mttr".into(),
                Json::Arr(
                    self.mttr
                        .iter()
                        .map(|m| {
                            Json::Obj(vec![
                                ("class".into(), Json::Str(m.class.clone())),
                                ("count".into(), Json::Num(m.count)),
                                ("min".into(), Json::Num(m.min)),
                                ("max".into(), Json::Num(m.max)),
                                ("total".into(), Json::Num(m.total)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("checkpoints".into(), Json::Num(self.checkpoints)),
            ("replay".into(), self.replay.as_ref().map_or(Json::Null, ReplayInfo::to_json)),
            ("metrics".into(), self.metrics.to_json()),
        ])
    }

    /// Parses an artifact. Tolerant of legacy shapes: a missing
    /// `recoveries`/`mttr`/`replay` parses to empty (artifacts written
    /// before the degradation lifecycle closed still load).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed required field.
    pub fn from_json(v: &Json) -> Result<SoakReport, String> {
        let need_num =
            |k: &str| v.get(k).and_then(Json::num).ok_or_else(|| format!("soak artifact: missing {k}"));
        let need_str = |k: &str| {
            v.get(k).and_then(Json::str).map(str::to_string).ok_or_else(|| format!("soak artifact: missing {k}"))
        };
        let faults = match v.get("faults").and_then(Json::arr) {
            Some(xs) => xs.iter().map(NetFault::from_json).collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        let freezes = match v.get("freezes").and_then(Json::arr) {
            Some(xs) => xs
                .iter()
                .map(|p| {
                    let items = p.arr().filter(|a| a.len() == 2).ok_or("soak artifact: bad freeze")?;
                    Ok::<(u64, u64), String>((
                        items[0].num().ok_or("soak artifact: bad freeze")?,
                        items[1].num().ok_or("soak artifact: bad freeze")?,
                    ))
                })
                .collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        let violation = match v.get("violation") {
            Some(Json::Null) | None => None,
            Some(j) => Some(SoakViolation::from_json(j)?),
        };
        // Legacy artifacts predate the degradation lifecycle: no
        // `recoveries` array still parses (to none).
        let recoveries = match v.get("recoveries").and_then(Json::arr) {
            Some(xs) => xs.iter().map(Recovery::from_json).collect::<Result<Vec<_>, _>>()?,
            None => Vec::new(),
        };
        let replay = match v.get("replay") {
            Some(Json::Null) | None => None,
            Some(j) => Some(ReplayInfo::from_json(j)?),
        };
        let metrics = match v.get("metrics") {
            Some(j) => Snapshot::from_json(j)?,
            None => Snapshot { counters: Vec::new(), hists: Vec::new() },
        };
        let mttr = mttr_rows(&recoveries_ttr(&recoveries));
        Ok(SoakReport {
            backend: need_str("backend")?,
            ticks: need_num("ticks")?,
            seed: need_num("seed")?,
            intensity: need_str("intensity")?,
            checkpoint_every: v.get("checkpoint_every").and_then(Json::num).unwrap_or(0),
            nodes: v.get("nodes").and_then(Json::num).unwrap_or(4) as usize,
            inject_bug: v.get("inject_bug").and_then(Json::bool).unwrap_or(false),
            durability: v.get("durability").and_then(Json::str).unwrap_or("-").to_string(),
            ops: v.get("ops").and_then(Json::num).unwrap_or(0),
            final_tick: v.get("final_tick").and_then(Json::num).unwrap_or(0),
            faults,
            freezes,
            bug_op: v.get("bug_op").and_then(Json::num),
            violation,
            recoveries,
            mttr,
            checkpoints: v.get("checkpoints").and_then(Json::num).unwrap_or(0),
            replay,
            metrics,
        })
    }

    /// Human-readable summary with the MTTR table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "[soak:{}] {} ops over {} ticks (target {}), seed {}, {} intensity, {} fault(s), {} checkpoint(s)\n",
            self.backend,
            self.ops,
            self.final_tick,
            self.ticks,
            self.seed,
            self.intensity,
            self.faults.len(),
            self.checkpoints,
        );
        match &self.violation {
            None => out.push_str("verdict  : clean — every oracle held\n"),
            Some(v) => {
                out.push_str(&format!("verdict  : VIOLATION {} at op {} — {}\n", v.kind, v.op, v.detail));
                if let Some(r) = &self.replay {
                    out.push_str(&format!(
                        "replay   : resumed at op {} (tick {}), {} op(s) / {} tick(s) re-run, {}\n",
                        r.from_op,
                        r.from_tick,
                        r.replayed_ops,
                        r.replayed_ticks,
                        if r.reproduced { "reproduced" } else { "NOT reproduced" }
                    ));
                }
            }
        }
        if self.mttr.is_empty() {
            out.push_str("mttr     : no degradation spells (none expected, none seen)\n");
        } else {
            out.push_str("mttr     : class            count    min    max   mean (ticks)\n");
            for m in &self.mttr {
                out.push_str(&format!(
                    "           {:<16} {:>5} {:>6} {:>6} {:>6}\n",
                    m.class,
                    m.count,
                    m.min,
                    m.max,
                    m.total / m.count.max(1),
                ));
            }
        }
        out
    }
}

fn recoveries_ttr(rows: &[Recovery]) -> Vec<(String, u64)> {
    rows.iter().map(|r| (r.class.clone(), r.ttr())).collect()
}

fn mttr_rows(samples: &[(String, u64)]) -> Vec<MttrRow> {
    let mut by_class: BTreeMap<&str, (u64, u64, u64, u64)> = BTreeMap::new();
    for (class, ttr) in samples {
        let e = by_class.entry(class).or_insert((0, u64::MAX, 0, 0));
        e.0 += 1;
        e.1 = e.1.min(*ttr);
        e.2 = e.2.max(*ttr);
        e.3 += ttr;
    }
    by_class
        .into_iter()
        .map(|(class, (count, min, max, total))| MttrRow {
            class: class.to_string(),
            count,
            min,
            max,
            total,
        })
        .collect()
}

/// `(crash, recover, node)` spans paired from a fault list (a crash with
/// no later recovery is open-ended). Drives the gossip op stream's write
/// steering — derived from the timeline alone, so checkpointed replays and
/// shrunken artifacts steer identically.
fn crash_spans(faults: &[NetFault]) -> Vec<(u64, u64, usize)> {
    let mut out = Vec::new();
    for f in faults {
        if let NetFault::CrashReplica { at, node } = f {
            let until = faults
                .iter()
                .filter_map(|g| match g {
                    NetFault::RecoverReplica { at: r, node: m } if m == node && r > at => Some(*r),
                    _ => None,
                })
                .min()
                .unwrap_or(u64::MAX);
            out.push((*at, until, *node));
        }
    }
    out
}

/// The gossip home replica key `kx` prefers (mirrors
/// [`GossipBackend`]'s routing).
fn home_of_key(kx: usize, nodes: usize) -> usize {
    reg_key(kx).shard_index(nodes.max(1))
}

/// The soak loop proper: pure state in, deterministic verdict out.
struct Engine<'a> {
    cfg: &'a SoakConfig,
    tl: &'a Timeline,
    envelopes: Vec<(u64, u64)>,
    /// Crash spans from the timeline (gossip write steering).
    crashes: Vec<(u64, u64, usize)>,
}

impl Engine<'_> {
    fn expected(&self, tick: u64) -> bool {
        self.envelopes.iter().any(|(a, b)| tick >= *a && tick < *b)
    }

    /// One op of the stream: a pure function of the op index and the
    /// current backend clock (freeze windows are tick-addressed, so a
    /// checkpointed clock replays them identically).
    fn step(&self, st: &mut SoakState, recoveries: &mut Vec<Resolution>) -> Result<(), SoakViolation> {
        let op = st.ops;
        let tick = st.driven.tick(op);
        let frozen = self.tl.freezes.iter().any(|(a, b)| tick >= *a && tick < *b);
        let mut kx = (op % KEYS as u64) as usize;
        let mut write = op.is_multiple_of(3) && !frozen;
        if matches!(st.driven, Driven::Gossip(_)) {
            let n = self.cfg.nodes;
            if let Some(&(_, _, node)) =
                self.crashes.iter().find(|w| tick < w.0 && w.0 <= tick + STALE_APPROACH)
            {
                // A home is about to crash (and is already partitioned, in
                // the composed window): steer fresh advice into it so the
                // crash strands those deltas and opens a measurable
                // stale-advice spell.
                let homes: Vec<usize> =
                    (0..KEYS).filter(|k| home_of_key(*k, n) == node).collect();
                if !frozen && !homes.is_empty() {
                    write = true;
                    kx = homes[(op % homes.len() as u64) as usize];
                }
            } else if write {
                // While a home is down, keep writes off its keys: a write
                // would land at the fallback and close the spell before
                // the horizon ever measures it. Reads stay on the natural
                // cycle — they are what witnesses the staleness.
                let down = |k: usize| {
                    self.crashes
                        .iter()
                        .any(|w| w.0 <= tick && tick < w.1 && home_of_key(k, n) == w.2)
                };
                for _ in 0..KEYS {
                    if !down(kx) {
                        break;
                    }
                    kx = (kx + 1) % KEYS;
                }
            }
        }
        let key = reg_key(kx);
        let pid = Pid((op % self.cfg.nodes.max(1) as u64) as usize);
        if write {
            let val = Value::Int(op as i64 + 1);
            st.driven.write(pid, op, key, val.clone());
            if self.tl.bug_op != Some(op) {
                st.model.vals[kx] = val.clone();
            }
            st.model.seen[kx].push(val);
        } else {
            let got = st.driven.read(pid, op, key);
            self.check_read(op, kx, &got, st)?;
        }
        st.ops += 1;
        self.drain(st, op, recoveries)
    }

    fn check_read(&self, op: u64, kx: usize, got: &Value, st: &SoakState) -> Result<(), SoakViolation> {
        match st.driven {
            // Linearizable substrates must serve exactly the model (the
            // net backend's degraded fallback is the linearized view, so
            // equality holds straight through quorum-lost spells).
            Driven::Shm(_) | Driven::Net(_) => {
                if *got != st.model.vals[kx] {
                    return Err(SoakViolation {
                        kind: "read-divergence".into(),
                        op,
                        detail: format!(
                            "key {kx}: read {got} but the model holds {}",
                            st.model.vals[kx]
                        ),
                    });
                }
            }
            // Gossip reads may lag, but only to values that were actually
            // written (or ⊥): anything else was fabricated.
            Driven::Gossip(_) => {
                if !got.is_unit() && !st.model.seen[kx].contains(got) {
                    return Err(SoakViolation {
                        kind: "fabricated-read".into(),
                        op,
                        detail: format!("key {kx}: read {got}, which nobody ever wrote"),
                    });
                }
            }
        }
        Ok(())
    }

    fn drain(&self, st: &mut SoakState, op: u64, recoveries: &mut Vec<Resolution>) -> Result<(), SoakViolation> {
        for d in st.driven.drain_degradations() {
            match d.kind {
                // Stale advice is typed, recoverable service — its spell
                // must close (checked at quiescence), but it is not a
                // soak violation by itself.
                DegradationKind::AdviceStale => {}
                DegradationKind::QuorumLost => {
                    if !self.expected(d.tick) {
                        return Err(SoakViolation {
                            kind: "quorum-lost".into(),
                            op,
                            detail: format!("quorum loss outside every expected envelope: {d}"),
                        });
                    }
                }
            }
        }
        recoveries.append(&mut st.driven.drain_resolutions());
        Ok(())
    }

    /// End-of-stream oracles: gossip convergence-on-quiescence and causal
    /// replay, a model read-back sweep over every key, and the degradation
    /// lifecycle (no spell may still be open).
    fn quiesce(&self, st: &mut SoakState, recoveries: &mut Vec<Resolution>) -> Result<(), SoakViolation> {
        let op = st.ops;
        if let Driven::Gossip(g) = &mut st.driven {
            let budget = 3 * self.cfg.nodes as u64 + 8;
            if g.run_rounds_until_converged(budget).is_none() {
                return Err(SoakViolation {
                    kind: "gossip-divergence".into(),
                    op,
                    detail: format!("cluster failed to converge within {budget} quiescent rounds"),
                });
            }
            if !g.causal_ok() {
                return Err(SoakViolation {
                    kind: "causal-replay".into(),
                    op,
                    detail: "a replica state is not the causal replay of its delivered deltas".into(),
                });
            }
        }
        // Read-back sweep: after quiescence every backend — gossip
        // included, now that it has converged — must serve the model.
        for kx in 0..KEYS {
            let got = st.driven.read(Pid(0), op, reg_key(kx));
            if got != st.model.vals[kx] {
                return Err(SoakViolation {
                    kind: "read-divergence".into(),
                    op,
                    detail: format!(
                        "final sweep, key {kx}: read {got} but the model holds {}",
                        st.model.vals[kx]
                    ),
                });
            }
        }
        self.drain(st, op, recoveries)?;
        if st.driven.net_degraded() {
            return Err(SoakViolation {
                kind: "unresolved-degradation".into(),
                op,
                detail: "a quorum-lost spell was still open when the soak ended".into(),
            });
        }
        Ok(())
    }

    /// Drives `st` to the tick horizon (recording checkpoints when a
    /// recorder is supplied), then runs the quiescence oracles. Returns
    /// the first violation, if any.
    fn run(
        &self,
        st: &mut SoakState,
        mut recorder: Option<&mut Vec<(u64, SoakState)>>,
        recoveries: &mut Vec<Resolution>,
    ) -> Option<SoakViolation> {
        // Backstop against a backend whose clock stalls: the op stream is
        // bounded even if the tick horizon is never reached.
        let cap = self.cfg.ticks.saturating_mul(8).max(1_024);
        while st.driven.tick(st.ops) < self.cfg.ticks && st.ops < cap {
            if let Some(r) = recorder.as_deref_mut() {
                if self.cfg.checkpoint_every > 0 && st.ops.is_multiple_of(self.cfg.checkpoint_every)
                {
                    r.push((st.ops, st.clone()));
                    if r.len() > RECORDER_SLOTS {
                        r.remove(0);
                    }
                }
            }
            if let Err(v) = self.step(st, recoveries) {
                return Some(v);
            }
        }
        self.quiesce(st, recoveries).err()
    }

    /// Replays from the newest flight-recorder checkpoint and checks the
    /// violation reproduces there — the "resume from the last good
    /// checkpoint instead of tick 0" contract.
    fn certify(&self, checkpoints: &[(u64, SoakState)], v: &SoakViolation) -> Option<ReplayInfo> {
        let (from_op, snap) = checkpoints.last()?;
        let mut st = snap.clone();
        let from_tick = st.driven.tick(st.ops);
        let mut sink = Vec::new();
        let got = self.run(&mut st, None, &mut sink);
        let end_tick = st.driven.tick(st.ops);
        Some(ReplayInfo {
            from_op: *from_op,
            from_tick,
            replayed_ops: st.ops.saturating_sub(*from_op).max(1),
            replayed_ticks: end_tick.saturating_sub(from_tick),
            reproduced: got.as_ref().is_some_and(|g| g.kind == v.kind && g.op == v.op),
        })
    }
}

/// Runs one soak over an explicit [`Timeline`] — the artifact-replay and
/// shrink entry point. [`soak`] generates the timeline from the config
/// first; both produce identical reports for identical inputs.
pub fn run_soak(cfg: &SoakConfig, tl: &Timeline) -> SoakReport {
    let obs = MetricsHandle::counters();
    let envelopes = expected_envelopes(&tl.faults, cfg.nodes);
    let engine = Engine { cfg, tl, envelopes, crashes: crash_spans(&tl.faults) };
    let mut st = SoakState { driven: Driven::build(cfg, &tl.faults), model: Model::new(), ops: 0 };
    let mut checkpoints: Vec<(u64, SoakState)> = Vec::new();
    let mut resolutions: Vec<Resolution> = Vec::new();
    let violation = {
        // The recording context covers the main pass only: the replay
        // certification below re-executes ops and must not double-count.
        let _g = obs_local::enter(&obs, 0, 0);
        engine.run(&mut st, Some(&mut checkpoints), &mut resolutions)
    };
    let checkpoints_taken = checkpoints.len() as u64;
    let replay = violation.as_ref().and_then(|v| engine.certify(&checkpoints, v));
    let recoveries: Vec<Recovery> = resolutions.iter().map(Recovery::of).collect();
    let mttr = mttr_rows(&recoveries_ttr(&recoveries));
    SoakReport {
        backend: cfg.backend.name().to_string(),
        ticks: cfg.ticks,
        seed: cfg.seed,
        intensity: cfg.intensity.name().to_string(),
        checkpoint_every: cfg.checkpoint_every,
        nodes: cfg.nodes,
        inject_bug: cfg.inject_bug,
        durability: match cfg.backend {
            SoakBackend::Net => draw_durability(cfg.seed).name().to_string(),
            _ => "-".to_string(),
        },
        ops: st.ops,
        final_tick: st.driven.tick(st.ops),
        faults: tl.faults.clone(),
        freezes: tl.freezes.clone(),
        bug_op: tl.bug_op,
        violation,
        recoveries,
        mttr,
        checkpoints: checkpoints_taken,
        replay,
        metrics: obs.snapshot().expect("metrics enabled"),
    }
}

/// Runs one soak from its config: generates the seeded timeline, drives
/// the backend to the tick horizon under the online oracles, certifies any
/// violation against the flight recorder, and aggregates MTTR.
pub fn soak(cfg: &SoakConfig) -> SoakReport {
    run_soak(cfg, &timeline(cfg))
}

/// Is this JSON value a soak artifact (vs a sweep report / bare
/// violation)?
pub fn is_soak_artifact(v: &Json) -> bool {
    v.get("command").and_then(Json::str) == Some("soak")
}

/// One replay-diff row: `(field, artifact value, replay value)`.
pub type SoakDiff = Vec<(String, String, String)>;

/// Re-executes a soak artifact from scratch — the stored timeline, not a
/// regenerated one, so shrunken artifacts replay exactly what they carry —
/// and diffs the fresh verdict against the artifact field by field.
/// Returns the fresh report and the diff rows `(field, artifact, replay)`;
/// an empty diff means the artifact reproduced.
///
/// # Errors
///
/// Returns a description of the first malformed artifact field.
pub fn replay_soak(artifact: &Json) -> Result<(SoakReport, SoakDiff), String> {
    let old = SoakReport::from_json(artifact)?;
    let cfg = old.config()?;
    let fresh = run_soak(&cfg, &old.timeline());
    let mut diff = Vec::new();
    let mut field = |name: &str, a: String, b: String| {
        if a != b {
            diff.push((name.to_string(), a, b));
        }
    };
    let verdict = |r: &SoakReport| match &r.violation {
        None => "clean".to_string(),
        Some(v) => v.kind.clone(),
    };
    let verdict_op = |r: &SoakReport| match &r.violation {
        None => "-".to_string(),
        Some(v) => v.op.to_string(),
    };
    field("verdict", verdict(&old), verdict(&fresh));
    field("violation-op", verdict_op(&old), verdict_op(&fresh));
    field("ops", old.ops.to_string(), fresh.ops.to_string());
    field("final-tick", old.final_tick.to_string(), fresh.final_tick.to_string());
    field("recoveries", old.recoveries.len().to_string(), fresh.recoveries.len().to_string());
    Ok((fresh, diff))
}

/// Groups a fault list into droppable windows: a partition with its heal,
/// a crash with its matching recovery, loss/corruption windows (and any
/// stray heal/recover) singly.
fn fault_windows(faults: &[NetFault]) -> Vec<Vec<usize>> {
    let mut grouped = vec![false; faults.len()];
    let mut windows = Vec::new();
    for i in 0..faults.len() {
        if grouped[i] {
            continue;
        }
        grouped[i] = true;
        let mut w = vec![i];
        match &faults[i] {
            NetFault::Partition { at, .. } => {
                if let Some(j) = (i + 1..faults.len()).find(|j| {
                    !grouped[*j] && matches!(&faults[*j], NetFault::Heal { at: h } if h > at)
                }) {
                    grouped[j] = true;
                    w.push(j);
                }
            }
            NetFault::CrashReplica { at, node } => {
                if let Some(j) = (i + 1..faults.len()).find(|j| {
                    !grouped[*j]
                        && matches!(&faults[*j],
                            NetFault::RecoverReplica { at: h, node: m } if h > at && m == node)
                }) {
                    grouped[j] = true;
                    w.push(j);
                }
            }
            _ => {}
        }
        windows.push(w);
    }
    windows
}

/// Shrinks a violating soak artifact by greedily dropping whole fault
/// windows (partition+heal and crash+recover pairs together, loss and
/// corruption windows singly) and freeze windows, keeping each drop iff
/// the re-soak still reaches the same violation kind. Returns the
/// shrunken, replayable report and the number of re-soaks spent. A clean
/// report is returned unchanged.
pub fn shrink_soak(report: &SoakReport) -> (SoakReport, usize) {
    let Some(v0) = report.violation.clone() else {
        return (report.clone(), 0);
    };
    let Ok(cfg) = report.config() else {
        return (report.clone(), 0);
    };
    let mut best = report.clone();
    let mut tl = report.timeline();
    let mut used = 0;
    let still_violates = |cand: &Timeline, used: &mut usize| -> Option<SoakReport> {
        *used += 1;
        let r = run_soak(&cfg, cand);
        match &r.violation {
            Some(v) if v.kind == v0.kind => Some(r),
            _ => None,
        }
    };
    // Fault windows first (the expensive components), then freezes.
    let mut progressed = true;
    while progressed && used < MAX_SOAK_REPLAYS {
        progressed = false;
        for w in fault_windows(&tl.faults) {
            if used >= MAX_SOAK_REPLAYS {
                break;
            }
            let mut cand = tl.clone();
            let mut drop_ix: Vec<usize> = w.clone();
            drop_ix.sort_unstable_by(|a, b| b.cmp(a));
            for i in drop_ix {
                cand.faults.remove(i);
            }
            if let Some(r) = still_violates(&cand, &mut used) {
                tl = cand;
                best = r;
                progressed = true;
                break;
            }
        }
    }
    while !tl.freezes.is_empty() && used < MAX_SOAK_REPLAYS {
        let mut dropped = false;
        for i in 0..tl.freezes.len() {
            if used >= MAX_SOAK_REPLAYS {
                break;
            }
            let mut cand = tl.clone();
            cand.freezes.remove(i);
            if let Some(r) = still_violates(&cand, &mut used) {
                tl = cand;
                best = r;
                dropped = true;
                break;
            }
        }
        if !dropped {
            break;
        }
    }
    (best, used)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timelines_are_serialized_and_majority_safe_without_storms() {
        let mut cfg = SoakConfig::new(SoakBackend::Net);
        cfg.intensity = Intensity::Calm;
        let tl = timeline(&cfg);
        assert!(!tl.faults.is_empty(), "a 2k-tick calm soak still draws windows");
        // Calm menus never break the majority: no expected envelopes.
        assert!(expected_envelopes(&tl.faults, cfg.nodes).is_empty());
        assert!(wfa_net::config::majority_safe(&tl.faults, cfg.nodes));
        // Windows are serialized: sorted by start tick.
        let starts: Vec<u64> = tl
            .faults
            .iter()
            .filter_map(|f| match f {
                NetFault::Partition { at, .. }
                | NetFault::CrashReplica { at, .. }
                | NetFault::Drop { at, .. }
                | NetFault::CorruptMessage { at, .. } => Some(*at),
                NetFault::Heal { .. } | NetFault::RecoverReplica { .. } => None,
            })
            .collect();
        assert!(starts.windows(2).all(|w| w[0] < w[1]), "windows overlap: {starts:?}");
    }

    #[test]
    fn storm_timelines_have_expected_envelopes_but_injected_bugs_do_not() {
        let mut cfg = SoakConfig::new(SoakBackend::Net);
        cfg.intensity = Intensity::Storm;
        cfg.seed = 3;
        let tl = timeline(&cfg);
        let envelopes = expected_envelopes(&tl.faults, cfg.nodes);
        assert!(!envelopes.is_empty(), "storms draw heal-bounded majority partitions");
        // The injected bug is an *unhealed* majority partition — it must
        // not gain an envelope (its degradations are the violation).
        cfg.inject_bug = true;
        let bug_tl = timeline(&cfg);
        assert_eq!(bug_tl.faults.len(), tl.faults.len() + 1);
        assert_eq!(expected_envelopes(&bug_tl.faults, cfg.nodes).len(), envelopes.len());
    }

    #[test]
    fn clean_shm_soak_is_deterministic_and_violation_free() {
        let mut cfg = SoakConfig::new(SoakBackend::Shm);
        cfg.ticks = 500;
        let (a, b) = (soak(&cfg), soak(&cfg));
        assert!(a.violation.is_none(), "{:?}", a.violation);
        assert_eq!(a.ops, cfg.ticks, "one shm op per tick");
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        assert!(a.checkpoints > 0);
    }

    #[test]
    fn shm_injected_bug_is_caught_and_replays_from_its_checkpoint() {
        let mut cfg = SoakConfig::new(SoakBackend::Shm);
        cfg.ticks = 600;
        cfg.checkpoint_every = 32;
        cfg.inject_bug = true;
        let r = soak(&cfg);
        let v = r.violation.as_ref().expect("the skipped model write must surface");
        assert_eq!(v.kind, "read-divergence");
        let rep = r.replay.as_ref().expect("the recorder held a resume point");
        assert!(rep.reproduced, "the violation must reproduce from the checkpoint");
        assert!(
            rep.replayed_ops * 5 < r.ops,
            "resume point too far back: {} of {} ops",
            rep.replayed_ops,
            r.ops
        );
    }

    #[test]
    fn soak_artifacts_roundtrip_and_legacy_artifacts_still_parse() {
        let mut cfg = SoakConfig::new(SoakBackend::Shm);
        cfg.ticks = 300;
        let r = soak(&cfg);
        let j = r.to_json();
        assert!(is_soak_artifact(&j));
        let back = SoakReport::from_json(&j).unwrap();
        assert_eq!(back.to_json().to_string(), j.to_string());
        // A legacy artifact without the lifecycle fields still parses.
        let text = j.to_string();
        let mut legacy = Json::parse(&text).unwrap();
        if let Json::Obj(fields) = &mut legacy {
            fields.retain(|(k, _)| k != "recoveries" && k != "mttr" && k != "replay");
        }
        let old = SoakReport::from_json(&legacy).unwrap();
        assert!(old.recoveries.is_empty());
        assert!(old.replay.is_none());
    }

    #[test]
    fn durability_draw_is_a_pure_function_of_the_seed() {
        for seed in 0..32 {
            assert_eq!(draw_durability(seed), draw_durability(seed));
        }
        // All three policies occur within a small seed range.
        let names: std::collections::BTreeSet<&str> =
            (0..32).map(|s| draw_durability(s).name()).collect();
        assert_eq!(names.len(), 3, "{names:?}");
    }

    #[test]
    fn fault_windows_pair_partitions_with_heals_and_crashes_with_recoveries() {
        let faults = vec![
            NetFault::CrashReplica { at: 10, node: 1 },
            NetFault::RecoverReplica { at: 30, node: 1 },
            NetFault::Drop { at: 50, until: 60, node: 0 },
            NetFault::Partition { at: 80, nodes: vec![2] },
            NetFault::Heal { at: 100 },
        ];
        let w = fault_windows(&faults);
        assert_eq!(w, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }
}
