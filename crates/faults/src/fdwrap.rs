//! Fault-injecting failure-detector wrapper.
//!
//! [`FaultyFdGen`] wraps an honest [`FdGen`] and corrupts its samples
//! according to a [`FaultPlan`]: losing every k-th query, serving stale
//! duplicates, and hiding all advice before a delay. It implements
//! [`FdSource`], so the EFD harness runs it without knowing — the injection
//! point the paper's model leaves open (the detector history `H ∈ D(F)` is
//! adversarially chosen; the wrapper explores histories *outside* `D(F)` to
//! probe how much each algorithm actually relies on its advice).
//!
//! All corruption is counter-based and deterministic: a wrapped generator is
//! a pure function of the inner generator's seed and the plan.

use wfa_fd::detectors::{FdGen, FdSource};
use wfa_fd::pattern::{FailurePattern, SIdx};
use wfa_kernel::value::Value;

use crate::plan::{FaultPlan, FdFault};

/// An [`FdGen`] whose samples are corrupted by a [`FaultPlan`].
#[derive(Clone, Debug)]
pub struct FaultyFdGen {
    inner: FdGen,
    faults: Vec<FdFault>,
    advice_delay: u64,
    clear_after: Option<u64>,
    /// Per-process query counters (drive the periodic faults).
    counts: Vec<u64>,
    /// Per-process last *fresh* sample (serves the stale duplicates).
    cache: Vec<Option<Value>>,
}

impl FaultyFdGen {
    /// Wraps `inner`, applying the FD-related parts of `plan` (its crash and
    /// stop injections are handled by the run driver, not the wrapper).
    pub fn new(inner: FdGen, plan: &FaultPlan) -> FaultyFdGen {
        let n = inner.pattern().n();
        FaultyFdGen {
            inner,
            faults: plan.fd_faults.clone(),
            advice_delay: plan.advice_delay,
            clear_after: plan.clear_after,
            counts: vec![0; n],
            cache: vec![None; n],
        }
    }

    /// The wrapped honest generator (for history inspection).
    pub fn inner(&self) -> &FdGen {
        &self.inner
    }

    /// `true` iff corruption is still active at time `t`.
    fn active(&self, t: u64) -> bool {
        self.clear_after.is_none_or(|c| t < c)
    }
}

impl FdSource for FaultyFdGen {
    fn output(&mut self, q: SIdx, t: u64) -> Value {
        self.counts[q] += 1;
        if !self.active(t) {
            return self.inner.output(q, t);
        }
        if t < self.advice_delay {
            // Delayed advice: the module has not produced anything yet.
            return Value::Unit;
        }
        // First matching fault wins; plans target each q at most once.
        let fault = self.faults.iter().find(|f| f.q() == q).cloned();
        match fault {
            Some(FdFault::Lose { period, .. }) if self.counts[q].is_multiple_of(period) => Value::Unit,
            Some(FdFault::Freeze { period, .. }) => {
                let refresh = self.cache[q].is_none() || self.counts[q].is_multiple_of(period);
                if refresh {
                    let v = self.inner.output(q, t);
                    self.cache[q] = Some(v.clone());
                    v
                } else {
                    self.cache[q].clone().expect("cache populated on first query")
                }
            }
            _ => self.inner.output(q, t),
        }
    }

    fn pattern(&self) -> &FailurePattern {
        self.inner.pattern()
    }

    fn stabilization(&self) -> u64 {
        // Corruption pushes effective stabilization to at least its end.
        let base = self.inner.stabilization();
        match self.clear_after {
            Some(c) if !self.faults.is_empty() || self.advice_delay > 0 => base.max(c),
            _ => base.max(self.advice_delay),
        }
    }

    fn name(&self) -> String {
        format!("faulty({})", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn omega(n: usize) -> FdGen {
        FdGen::omega(FailurePattern::failure_free(n), 10, 7)
    }

    #[test]
    fn clean_plan_is_transparent() {
        let mut honest = omega(3);
        let mut wrapped = FaultyFdGen::new(omega(3), &FaultPlan::clean());
        for t in 0..50 {
            assert_eq!(honest.output(t as usize % 3, t), wrapped.output(t as usize % 3, t));
        }
        assert_eq!(wrapped.name(), "faulty(Ω)");
    }

    #[test]
    fn lose_drops_every_kth_query() {
        let plan = FaultPlan::clean().lose(0, 3);
        let mut fd = FaultyFdGen::new(omega(2), &plan);
        let vals: Vec<Value> = (0..9).map(|t| fd.output(0, 100 + t)).collect();
        // Queries 3, 6, 9 (1-based) are lost.
        assert_eq!(vals[2], Value::Unit);
        assert_eq!(vals[5], Value::Unit);
        assert_eq!(vals[8], Value::Unit);
        assert!(vals[0] != Value::Unit && vals[1] != Value::Unit);
        // The untargeted process is untouched.
        assert_ne!(fd.output(1, 200), Value::Unit);
    }

    #[test]
    fn freeze_serves_stale_duplicates() {
        // ◇P pre-stabilization is noisy, so freshness differences show up.
        let inner = FdGen::eventually_perfect(FailurePattern::failure_free(3), 1_000, 3);
        let plan = FaultPlan::clean().freeze(0, 4);
        let mut fd = FaultyFdGen::new(inner, &plan);
        let vals: Vec<Value> = (0..8).map(|t| fd.output(0, t)).collect();
        // Queries 2, 3 duplicate query 1's sample; query 4 refreshes.
        assert_eq!(vals[0], vals[1]);
        assert_eq!(vals[1], vals[2]);
        // Inner history only records the fresh samples.
        assert!(fd.inner().history().len() < 8);
    }

    #[test]
    fn advice_delay_hides_everything_then_lifts() {
        let plan = FaultPlan::clean().delay_advice(20);
        let mut fd = FaultyFdGen::new(omega(2), &plan);
        assert_eq!(fd.output(0, 0), Value::Unit);
        assert_eq!(fd.output(1, 19), Value::Unit);
        assert_ne!(fd.output(0, 20), Value::Unit);
        // Inner history never saw the suppressed queries.
        assert_eq!(fd.inner().history().len(), 1);
    }

    #[test]
    fn clear_after_restores_honesty() {
        let plan = FaultPlan::clean().lose(0, 1).clear_at(30);
        let mut fd = FaultyFdGen::new(omega(2), &plan);
        assert_eq!(fd.output(0, 10), Value::Unit); // every query lost
        assert_ne!(fd.output(0, 30), Value::Unit); // corruption over
        assert!(fd.stabilization() >= 30);
    }

    #[test]
    fn corruption_is_deterministic() {
        let plan = FaultPlan::clean().lose(1, 2).freeze(0, 3).delay_advice(5).clear_at(40);
        let run = || {
            let mut fd = FaultyFdGen::new(omega(3), &plan);
            (0..60).map(|t| fd.output(t as usize % 3, t)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
