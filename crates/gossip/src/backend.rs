//! The gossip register backend: delta-CRDT anti-entropy over the simulated
//! network.
//!
//! Implements the kernel's [`MemoryBackend`] interface as an
//! *eventually-consistent* advice substrate — the third backend after
//! in-process `SharedMemory` and the ABD quorum emulation:
//!
//! * **write(key, v)** — minted as a delta (a globally-sequenced lattice
//!   [`Entry`] tagged with a [`Dot`]) at the key's *home replica*
//!   (`key.shard_index(nodes)`, falling past crashed nodes), merged locally,
//!   and owed to every peer through per-peer delta buffers. **Zero
//!   messages** at op time.
//! * **read(key)** — the home replica's local join. **Zero quorum
//!   round-trips**: no message is sent on the op path; freshness comes from
//!   the anti-entropy rounds running between ops.
//!
//! **Anti-entropy.** Every [`GossipConfig::interval`] ops the backend runs
//! one round: a seeded circulant sweep where replica `i` exchanges with
//! `(i + offset) % n` (every third round pins `offset = 1`, so a ring —
//! which propagates every delta hop-by-hop in at most `n` ring rounds —
//! recurs on a bounded schedule; the other rounds draw the offset from the
//! splitmix stream for mixing). One exchange is up to four messages over
//! [`NetRuntime::peer_send`]:
//!
//! 1. `i → p`: Merkle digest root + causal context (version vector).
//! 2. `p → i`: the same back. Equal roots and contexts — the quiescent
//!    case — end the exchange here: two messages, O(1), regardless of how
//!    many registers exist (`net_gossip_digest_hits`).
//! 3. `i → p`: the buffered deltas `p`'s context lacks.
//! 4. `p → i`: the converse batch, doubling as the ack that lets `i` GC its
//!    buffer (`net_gossip_gc_dots`).
//!
//! Context receipt is the only GC evidence, so a dropped leg merely leaves
//! buffers intact for the next round — at-least-once delivery composed with
//! idempotent joins needs nothing stronger. Every fault the runtime models
//! (partitions, drops, crash windows, corruption quarantine) applies to
//! exchange messages exactly as to quorum traffic.
//!
//! **Staleness, typed.** A read that returns a value behind the global join
//! is *stale advice* — counted, and escalated to a structured
//! [`DegradationKind::AdviceStale`] (never a panic) once the serving
//! replica has gone more than [`GossipConfig::stale_horizon`] rounds
//! without a successful exchange, or the key's preferred home has been
//! crashed for that long. Advice is stale, never wrong: the substrate is
//! correct for the monotone advice/FD register class, and a runtime guard
//! refuses the one non-monotone transition the kernel's registers allow —
//! erasing a register by writing `⊥` over a value — unless
//! [`GossipConfig::allow_nonmonotone`] (CLI `--gossip-unsafe`) accepts it.
//!
//! **Crash and recovery.** Under a non-`Durable` [`Durability`] a crashed
//! replica loses its store and context (the gossip store has no
//! partial-flush model — the mint log is write-ahead, so
//! `PrefixDurable` wipes like `Volatile`). On recovery it self-heals its
//! own-origin deltas from the log and the peers' buffers are refilled with
//! everything they hold, so anti-entropy restores the rest; deltas whose
//! origin crashed before any exchange stay unreachable until that origin
//! recovers — reads of those keys degrade (stale), they never lie.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

use wfa_kernel::backend::{Degradation, DegradationKind, MemoryBackend, Resolution};
use wfa_kernel::memory::{RegKey, SharedMemory};
use wfa_kernel::value::{Pid, Value};
use wfa_net::config::{Durability, NetFault};
use wfa_net::retry::probe_healthy;
use wfa_net::runtime::{mix, NetRuntime};
use wfa_obs::local as obs_local;
use wfa_obs::metrics::{Counter, HistKind};
use wfa_obs::span::{seq, EventKind, SpanKind};

use crate::config::GossipConfig;
use crate::store::{DeltaRec, Dot, Entry, ReplicaStore};

/// Salt for the per-round partner-offset draw.
const OFFSET_SALT: u64 = 0xa24b_aed4_963e_e407;

/// The delta-CRDT anti-entropy register file. Drop-in [`MemoryBackend`]:
/// `Executor::set_backend(Box::new(GossipBackend::new(cfg)))` serves every
/// register operation from replica-local joins, with anti-entropy rounds
/// interleaved between ops.
#[derive(Clone, Debug)]
pub struct GossipBackend {
    cfg: GossipConfig,
    net: NetRuntime,
    /// The register directory: key → dense slot index, cluster-wide (same
    /// interning discipline as the ABD backend).
    dir: BTreeMap<RegKey, usize>,
    /// Per-replica delta-states.
    replicas: Vec<ReplicaStore>,
    /// The write-ahead delta log: every delta ever minted, in mint order.
    /// Durable by definition (it is the write path's record), it feeds
    /// recovery self-heals and crash-refills of peer buffers.
    log: Vec<DeltaRec>,
    /// Next dot index to mint per origin (lives here, not in the replica,
    /// so a wiped replica never forks its mint order).
    next_dot: Vec<u64>,
    /// Global write sequence: stamps entries so every register lattice is a
    /// chain and the global join equals the linearized contents.
    wseq: u64,
    /// `buf[r][p]`: log indices replica `r` owes peer `p`, in merge order
    /// (per-origin contiguous). Filled on every fresh merge at `r`
    /// (transitive fan-out — what makes ring rounds propagate hop-by-hop),
    /// trimmed only by delivered-context evidence.
    buf: Vec<Vec<Vec<usize>>>,
    /// Anti-entropy rounds run so far.
    rounds: u64,
    /// Ops since the last round (compared against the interval).
    ops_since_round: u64,
    /// Round number of each replica's last completed exchange half.
    last_success: Vec<u64>,
    /// The crash/recover timeline `(tick, node, is_crash)` sorted by tick,
    /// processed once in order by `maintain` (the ABD discipline).
    events: Vec<(u64, usize, bool)>,
    /// Next unprocessed entry of `events`.
    cursor: usize,
    /// Replica is currently crashed (its exchanges are skipped and
    /// `home_of` probes past it).
    crashed: Vec<bool>,
    /// Round count at each replica's most recent crash (drives the
    /// crashed-home staleness horizon).
    crash_round: Vec<u64>,
    /// Rate limit: the round in which each replica last raised an
    /// `AdviceStale` degradation (one per replica per round).
    last_degraded_round: Vec<u64>,
    /// Per *preferred* home: the tick at which the current stale-advice
    /// spell for keys homed there first degraded, `None` when healthy. The
    /// anchor of the MTTR sample emitted when a read of such a key comes
    /// back fresh (or its lag drops back under the horizon).
    /// Observation-only: excluded from the fingerprint.
    stale_since: Vec<Option<u64>>,
    /// The global join — equal to the linearized contents because writes
    /// are globally sequenced. Serves [`MemoryBackend::view`] and the
    /// staleness comparison.
    view: SharedMemory,
    /// Degradations raised but not yet drained. An observation stream:
    /// excluded from the fingerprint.
    pending: Vec<Degradation>,
    /// Resolutions (spell-closing edges) not yet drained. An observation
    /// stream like `pending`: excluded from the fingerprint.
    resolved: Vec<Resolution>,
}

impl GossipBackend {
    /// A backend over a fresh network with empty replicas.
    pub fn new(cfg: GossipConfig) -> GossipBackend {
        let mut events: Vec<(u64, usize, bool)> = cfg
            .net
            .faults
            .iter()
            .filter_map(|f| match f {
                NetFault::CrashReplica { at, node } => Some((*at, *node, true)),
                NetFault::RecoverReplica { at, node } => Some((*at, *node, false)),
                _ => None,
            })
            .collect();
        events.sort_by_key(|e| e.0);
        let n = cfg.net.nodes;
        GossipBackend {
            net: NetRuntime::new(cfg.net.clone()),
            cfg,
            dir: BTreeMap::new(),
            replicas: (0..n).map(|_| ReplicaStore::new(n)).collect(),
            log: Vec::new(),
            next_dot: vec![0; n],
            wseq: 0,
            buf: vec![vec![Vec::new(); n]; n],
            rounds: 0,
            ops_since_round: 0,
            last_success: vec![0; n],
            events,
            cursor: 0,
            crashed: vec![false; n],
            crash_round: vec![0; n],
            last_degraded_round: vec![u64::MAX; n],
            stale_since: vec![None; n],
            view: SharedMemory::new(),
            pending: Vec::new(),
            resolved: Vec::new(),
        }
    }

    /// The configuration this backend replays.
    pub fn config(&self) -> &GossipConfig {
        &self.cfg
    }

    /// The underlying network runtime (for inspection in tests/CLI).
    pub fn runtime(&self) -> &NetRuntime {
        &self.net
    }

    /// Anti-entropy rounds run so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Messages sent on the simulated network so far.
    pub fn messages_sent(&self) -> u64 {
        self.net.messages_sent()
    }

    /// The global join of every minted delta — identical to the linearized
    /// register contents (an alias of [`MemoryBackend::view`] under the
    /// oracle's name).
    pub fn global_join(&self) -> &SharedMemory {
        &self.view
    }

    /// Total log indices still parked in per-peer delta buffers (the GC
    /// oracle: a converged, acked cluster owes nothing).
    pub fn buffered_dots(&self) -> usize {
        self.buf.iter().flatten().map(Vec::len).sum()
    }

    /// Replica count.
    fn nodes(&self) -> usize {
        self.cfg.net.nodes
    }

    /// The dense slot index of `key`, interning it on first use. Interning
    /// resizes every replica's slot array, so stores stay directly
    /// comparable (the convergence oracle relies on uniform lengths).
    fn key_index(&mut self, key: RegKey) -> usize {
        let next = self.dir.len();
        let kx = *self.dir.entry(key).or_insert(next);
        let len = self.dir.len();
        for r in &mut self.replicas {
            r.ensure_slots(len);
        }
        kx
    }

    /// The replica serving `key`: its pure-routed home
    /// (`key.shard_index(nodes)`), probing linearly past crashed replicas.
    /// Falls back to the preferred home if every replica is down.
    fn home_of(&self, key: RegKey) -> usize {
        probe_healthy(key.shard_index(self.nodes()), self.nodes(), |r| !self.crashed[r])
    }

    /// Merges log record `idx` into replica `r`; on a fresh merge, fans the
    /// index out into every peer buffer (transitive propagation). Returns
    /// whether the merge was fresh.
    fn merge_at(&mut self, r: usize, idx: usize) -> bool {
        let rec = self.log[idx].clone();
        if !self.replicas[r].merge(&rec) {
            return false;
        }
        for q in 0..self.nodes() {
            if q != r && !self.buf[r][q].contains(&idx) {
                self.buf[r][q].push(idx);
            }
        }
        true
    }

    /// Drops from `buf[holder][peer]` every record `peer`'s delivered
    /// context `acked` already covers — the ack-driven GC.
    fn gc(&mut self, holder: usize, peer: usize, acked: &[u64]) {
        let log = &self.log;
        let b = &mut self.buf[holder][peer];
        let before = b.len();
        b.retain(|idx| log[*idx].dot.index > acked[log[*idx].dot.origin]);
        obs_local::add(Counter::NetGossipGcDots, (before - b.len()) as u64);
    }

    /// Applies every crash/recover event at or before tick `upto` (the ABD
    /// maintenance discipline: latest-event-wins timelines, processed once,
    /// in order). Fault-free runs take the empty fast path.
    fn maintain(&mut self, upto: u64) {
        while self.cursor < self.events.len() && self.events[self.cursor].0 <= upto {
            let (_, node, is_crash) = self.events[self.cursor];
            self.cursor += 1;
            if is_crash {
                obs_local::bump(Counter::NetReplicaCrashes);
                self.crashed[node] = true;
                self.crash_round[node] = self.rounds;
                if self.cfg.net.durability != Durability::Durable {
                    // The store and context die with the process; what it
                    // owed peers is forgotten with it.
                    self.replicas[node].wipe();
                    for q in 0..self.nodes() {
                        self.buf[node][q].clear();
                    }
                }
            } else {
                obs_local::bump(Counter::NetReplicaRecoveries);
                self.crashed[node] = false;
                if self.cfg.net.durability != Durability::Durable {
                    self.heal_from_log(node);
                }
            }
        }
    }

    /// Post-recovery repair of a wiped replica from the write-ahead log:
    /// re-merge the replica's own-origin deltas (contiguous from 1, so the
    /// merges are legal), which also re-owes them to every peer via the
    /// fan-out; then rebuild each live peer's buffer toward it with
    /// everything that peer holds, restoring the buffer invariant the wipe
    /// broke (peers may have GC'd against the context that died). The
    /// rebuild replaces the buffer rather than appending: entries that
    /// survived from before the crash sit at the front, and exchanges ship
    /// in buffer order, so appending would let a later-minted dot travel
    /// ahead of an earlier one and break per-origin contiguity at the
    /// receiver. Log order *is* mint order, so a fresh rebuild keeps every
    /// origin's range contiguous. (The old buffer is a subset of the
    /// rebuild: buffered records are always merged-at-holder.)
    fn heal_from_log(&mut self, node: usize) {
        let own: Vec<usize> =
            (0..self.log.len()).filter(|i| self.log[*i].dot.origin == node).collect();
        for idx in own {
            self.merge_at(node, idx);
        }
        for r in 0..self.nodes() {
            if r == node {
                continue;
            }
            self.buf[r][node] = (0..self.log.len())
                .filter(|&idx| {
                    let d = self.log[idx].dot;
                    d.index <= self.replicas[r].seen(d.origin)
                })
                .collect();
        }
    }

    /// Counts the op against the interval and runs an anti-entropy round
    /// when it is due.
    fn maybe_round(&mut self) {
        self.ops_since_round += 1;
        if self.ops_since_round >= self.cfg.interval {
            self.ops_since_round = 0;
            self.round();
        }
    }

    /// One anti-entropy round: a circulant sweep at a seeded offset (ring
    /// offset pinned every third round — the bounded-convergence schedule).
    /// Public so oracles and benches can drive rounds without ops.
    pub fn round(&mut self) {
        self.rounds += 1;
        obs_local::bump(Counter::NetGossipRounds);
        let n = self.nodes();
        if n < 2 {
            // A singleton cluster is trivially in sync with itself.
            self.last_success[0] = self.rounds;
            return;
        }
        let offset = if self.rounds.is_multiple_of(3) {
            1
        } else {
            1 + (mix(self.cfg.net.seed ^ self.rounds.wrapping_mul(OFFSET_SALT)) % (n as u64 - 1))
                as usize
        };
        let start = self.net.now();
        for i in 0..n {
            let p = (i + offset) % n;
            if self.crashed[i] || self.crashed[p] {
                continue; // a dead endpoint cannot time out what it never started
            }
            self.exchange(i, p);
        }
        let dur = self.net.now() - start;
        obs_local::event(seq::NET, EventKind::Span { kind: SpanKind::AntiEntropy, dur });
    }

    /// One pairwise exchange `i ↔ p` (see the module docs for the four
    /// legs). Returns whether it ran to completion; any dropped leg leaves
    /// buffers intact and charges the timeout window to the clock.
    fn exchange(&mut self, i: usize, p: usize) -> bool {
        let anchor = self.net.now();
        let horizon = anchor + self.cfg.net.round_span();
        let slots = self.dir.len();
        // Leg 1, i → p: digest root + causal context.
        let ctx_i = self.replicas[i].ctx.clone();
        let root_i = self.replicas[i].digest_tree(slots).root();
        let Some(t1) = self.net.peer_send(i, p, false, anchor) else {
            self.net.advance_to(horizon);
            return false;
        };
        // i's delivered context is GC evidence at p.
        self.gc(p, i, &ctx_i);
        // Leg 2, p → i: the same back.
        let ctx_p = self.replicas[p].ctx.clone();
        let root_p = self.replicas[p].digest_tree(slots).root();
        let Some(t2) = self.net.peer_send(p, i, true, t1) else {
            self.net.advance_to(horizon.max(self.net.now()));
            return false;
        };
        self.gc(i, p, &ctx_p);
        if root_i == root_p && ctx_i == ctx_p {
            // Quiescent: two messages settled it, whatever the register count.
            obs_local::bump(Counter::NetGossipDigestHits);
            self.last_success[i] = self.rounds;
            self.last_success[p] = self.rounds;
            self.net.advance_to(t2.max(self.net.now()));
            return true;
        }
        // Leg 3, i → p: the buffered deltas p's context lacks.
        let send_i: Vec<usize> = self.buf[i][p]
            .iter()
            .copied()
            .filter(|idx| self.log[*idx].dot.index > ctx_p[self.log[*idx].dot.origin])
            .collect();
        let Some(t3) = self.net.peer_send(i, p, false, t2) else {
            self.net.advance_to(horizon.max(self.net.now()));
            return false;
        };
        obs_local::add(Counter::NetGossipDeltasSent, send_i.len() as u64);
        for idx in send_i {
            if self.merge_at(p, idx) {
                obs_local::bump(Counter::NetGossipDeltasApplied);
            }
        }
        self.last_success[p] = self.rounds;
        // Leg 4, p → i: the converse batch plus p's post-merge context — the
        // ack that lets i GC what leg 3 shipped.
        let send_p: Vec<usize> = self.buf[p][i]
            .iter()
            .copied()
            .filter(|idx| self.log[*idx].dot.index > ctx_i[self.log[*idx].dot.origin])
            .collect();
        let Some(t4) = self.net.peer_send(p, i, true, t3) else {
            self.net.advance_to(horizon.max(self.net.now()));
            return false;
        };
        obs_local::add(Counter::NetGossipDeltasSent, send_p.len() as u64);
        for idx in send_p {
            if self.merge_at(i, idx) {
                obs_local::bump(Counter::NetGossipDeltasApplied);
            }
        }
        let acked = self.replicas[p].ctx.clone();
        self.gc(i, p, &acked);
        self.last_success[i] = self.rounds;
        self.net.advance_to(t4.max(self.net.now()));
        true
    }

    /// Convergence oracle: every live replica holds the same delta-state
    /// (slots *and* context — quiescence as the digest exchange defines
    /// it). Vacuously true with at most one live replica.
    pub fn converged(&self) -> bool {
        let live: Vec<usize> = (0..self.nodes()).filter(|r| !self.crashed[*r]).collect();
        live.windows(2).all(|w| self.replicas[w[0]] == self.replicas[w[1]])
    }

    /// Causal-delivery oracle: each replica's store is exactly the replay
    /// of its causal context's log prefix — contexts never over- or
    /// under-claim what was merged.
    pub fn causal_ok(&self) -> bool {
        (0..self.nodes()).all(|r| {
            let mut replay = ReplicaStore::new(self.nodes());
            replay.ensure_slots(self.dir.len());
            for rec in &self.log {
                if rec.dot.index <= self.replicas[r].seen(rec.dot.origin) {
                    replay.merge(rec);
                }
            }
            replay == self.replicas[r]
        })
    }

    /// Drives anti-entropy rounds until [`GossipBackend::converged`], up to
    /// `max` rounds. Returns how many were needed, or `None` if the cluster
    /// failed to converge within the budget (e.g. an unhealed partition).
    pub fn run_rounds_until_converged(&mut self, max: u64) -> Option<u64> {
        for k in 0..=max {
            self.maintain(self.net.now());
            if self.converged() {
                return Some(k);
            }
            if k < max {
                self.round();
            }
        }
        None
    }
}

impl MemoryBackend for GossipBackend {
    fn read(&mut self, me: Pid, now: u64, key: RegKey) -> Value {
        self.maintain(self.net.now());
        self.maybe_round();
        self.maintain(self.net.now());
        let kx = self.key_index(key);
        let home = self.home_of(key);
        let val = self.replicas[home]
            .slots
            .get(kx)
            .and_then(Option::as_ref)
            .map_or(Value::Unit, |e| e.val.clone());
        let truth = self.view.peek(key);
        // How long has freshness been out of reach? Two clocks: rounds
        // since the serving replica's last completed exchange (partition
        // starvation), and rounds since the key's preferred home crashed
        // (its unpropagated deltas are unreachable until it recovers).
        let preferred = key.shard_index(self.nodes());
        let dry = self.rounds.saturating_sub(self.last_success[home]);
        let crashed_dry = if self.crashed[preferred] {
            self.rounds.saturating_sub(self.crash_round[preferred])
        } else {
            0
        };
        let lag = dry.max(crashed_dry);
        if val != truth {
            obs_local::bump(Counter::NetGossipStaleReads);
            if lag > self.cfg.stale_horizon {
                if self.stale_since[preferred].is_none() {
                    self.stale_since[preferred] = Some(self.net.now());
                }
                if self.last_degraded_round[home] != self.rounds {
                    self.last_degraded_round[home] = self.rounds;
                    obs_local::bump(Counter::NetQuorumLost);
                    self.pending.push(Degradation {
                        kind: DegradationKind::AdviceStale,
                        op: "read".to_string(),
                        key,
                        pid: me,
                        time: now,
                        tick: self.net.now(),
                        answered: lag.min(usize::MAX as u64) as usize,
                        needed: self.cfg.stale_horizon.min(usize::MAX as u64) as usize,
                        nodes: self.nodes(),
                        shard: self.cfg.net.shard,
                    });
                }
                return val;
            }
        }
        // Fresh again, or the lag dropped back under the horizon: a spell
        // for this key's preferred home closes here. The check is at the
        // read site (not at exchange success) because a crashed home's
        // spell is served by a fallback whose exchanges stay healthy — only
        // a read can witness that the advice is usable again.
        if let Some(since) = self.stale_since[preferred].take() {
            let tick = self.net.now();
            let ttr = tick.saturating_sub(since);
            obs_local::bump(Counter::NetDegradationsResolved);
            obs_local::observe(HistKind::TimeToRecovery, ttr);
            obs_local::event(seq::NET, EventKind::Span { kind: SpanKind::DegradedSpell, dur: ttr });
            self.resolved.push(Resolution {
                kind: DegradationKind::AdviceStale,
                key,
                pid: me,
                time: now,
                degrade_tick: since,
                resolve_tick: tick,
                shard: self.cfg.net.shard,
            });
        }
        val
    }

    fn write(&mut self, me: Pid, now: u64, key: RegKey, val: Value) {
        self.maintain(self.net.now());
        self.maybe_round();
        self.maintain(self.net.now());
        if val.is_unit() && !self.view.peek(key).is_unit() && !self.cfg.allow_nonmonotone {
            panic!(
                "gossip: non-monotone register program: erasing key=[{}:{},{}] \
                 (pid={} time={now}) by writing ⊥ over a value — a transition no join \
                 can propagate. The gossip substrate serves the monotone advice/FD \
                 register class; pass --gossip-unsafe to accept erasures (they reach \
                 the view but do not gossip).",
                key.ns, key.ix[0], key.ix[1], me.0,
            );
        }
        let kx = self.key_index(key);
        let home = self.home_of(key);
        self.wseq += 1;
        self.next_dot[home] += 1;
        self.log.push(DeltaRec {
            dot: Dot { origin: home, index: self.next_dot[home] },
            slot: kx,
            entry: Entry { seq: self.wseq, writer: me.0 as u32, val: val.clone() },
        });
        let idx = self.log.len() - 1;
        self.merge_at(home, idx);
        self.view.write(key, val);
    }

    fn view(&self) -> &SharedMemory {
        &self.view
    }

    fn drain_degradations(&mut self) -> Vec<Degradation> {
        std::mem::take(&mut self.pending)
    }

    fn drain_resolutions(&mut self) -> Vec<Resolution> {
        std::mem::take(&mut self.resolved)
    }

    fn fingerprint(&self, mut h: &mut dyn Hasher) {
        self.view.fingerprint(&mut h);
        self.net.hash(&mut h);
        self.cfg.interval.hash(&mut h);
        self.cfg.stale_horizon.hash(&mut h);
        self.cfg.allow_nonmonotone.hash(&mut h);
        // Key-canonical slot hashing (the BTreeMap iterates in key order);
        // contexts, buffers and the log follow in replica/index order.
        for (k, kx) in &self.dir {
            k.hash(&mut h);
            for r in &self.replicas {
                r.slots.get(*kx).hash(&mut h);
            }
        }
        for r in &self.replicas {
            r.ctx.hash(&mut h);
        }
        self.log.hash(&mut h);
        self.buf.hash(&mut h);
        self.next_dot.hash(&mut h);
        self.wseq.hash(&mut h);
        self.rounds.hash(&mut h);
        self.ops_since_round.hash(&mut h);
        self.last_success.hash(&mut h);
        self.cursor.hash(&mut h);
        self.crashed.hash(&mut h);
        self.crash_round.hash(&mut h);
        self.last_degraded_round.hash(&mut h);
        // `pending`, `resolved` and `stale_since` are observation streams —
        // deliberately excluded.
    }

    fn clone_backend(&self) -> Box<dyn MemoryBackend> {
        Box::new(self.clone())
    }

    fn label(&self) -> String {
        format!("gossip(n={})", self.nodes())
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wfa_obs::metrics::MetricsHandle;

    fn backend(nodes: usize, seed: u64) -> GossipBackend {
        GossipBackend::new(GossipConfig::new(nodes, seed))
    }

    /// A key whose pure routing homes it at replica `node` of `n`.
    fn key_homed_at(node: usize, n: usize) -> RegKey {
        (0..256u32)
            .map(|a| RegKey::new(0).at(0, a))
            .find(|k| k.shard_index(n) == node)
            .expect("256 candidates cover every home")
    }

    #[test]
    fn clean_runs_read_exactly_like_shared_memory() {
        // Key-homed ops: the replica serving a key is the replica its
        // writes land on, so fault-free runs are never stale — the gossip
        // backend is observationally identical to SharedMemory.
        let mut g = backend(4, 7);
        let mut shm = SharedMemory::new();
        let keys = [RegKey::new(1), RegKey::new(1).at(0, 3), RegKey::new(2).at(1, 1)];
        for i in 0..80u64 {
            let key = keys[(i % 3) as usize];
            if i % 4 == 0 {
                let v = Value::Int(i as i64);
                g.write(Pid((i % 5) as usize), i, key, v.clone());
                shm.write(key, v);
            } else {
                assert_eq!(g.read(Pid((i % 5) as usize), i, key), shm.peek(key), "op {i}");
            }
        }
        assert_eq!(g.view().content_fingerprint(), shm.content_fingerprint());
        assert!(g.drain_degradations().is_empty());
    }

    #[test]
    fn ops_send_zero_messages_on_their_own_path() {
        // With the interval pushed out of reach, no round ever runs — and
        // the op path itself is message-free: every read is a local join,
        // every write a local merge. (The ABD backend pays 16 messages per
        // op at n = 4.)
        let obs = MetricsHandle::counters();
        let mut g = GossipBackend::new(GossipConfig::new(4, 7).with_interval(u64::MAX));
        {
            let _g = obs_local::enter(&obs, 0, 0);
            for i in 0..50u64 {
                let key = key_homed_at((i % 4) as usize, 4);
                g.write(Pid(0), i, key, Value::Int(i as i64));
                assert_eq!(g.read(Pid(1), i, key), Value::Int(i as i64));
            }
        }
        assert_eq!(obs.get(Counter::NetMsgsSent), 0, "zero quorum round-trips");
        assert_eq!(obs.get(Counter::NetGossipRounds), 0);
    }

    #[test]
    fn quiescent_exchanges_are_two_messages_whatever_the_register_count() {
        let obs = MetricsHandle::counters();
        let mut g = GossipBackend::new(GossipConfig::new(4, 7).with_interval(u64::MAX));
        for i in 0..32u64 {
            g.write(Pid(0), i, RegKey::new(0).at(0, i as u32), Value::Int(i as i64));
        }
        {
            let _g = obs_local::enter(&obs, 0, 0);
            assert!(g.run_rounds_until_converged(64).is_some(), "healthy cluster converges");
            let converged_msgs = obs.get(Counter::NetMsgsSent);
            let converged_hits = obs.get(Counter::NetGossipDigestHits);
            // One more round on the converged cluster: every exchange is a
            // digest hit — 2 messages each, independent of the 32 registers.
            g.round();
            assert_eq!(obs.get(Counter::NetMsgsSent) - converged_msgs, 2 * 4);
            assert_eq!(obs.get(Counter::NetGossipDigestHits) - converged_hits, 4);
        }
        assert!(g.causal_ok());
    }

    #[test]
    fn convergence_is_bounded_and_buffers_drain() {
        let obs = MetricsHandle::counters();
        let mut g = GossipBackend::new(GossipConfig::new(5, 11).with_interval(u64::MAX));
        for i in 0..40u64 {
            g.write(Pid((i % 5) as usize), i, RegKey::new(1).at(0, (i % 13) as u32), Value::Int(i as i64));
        }
        assert!(!g.converged(), "five homes hold disjoint fresh deltas");
        let rounds = {
            let _g = obs_local::enter(&obs, 0, 0);
            g.run_rounds_until_converged(3 * 5).expect("ring schedule bounds convergence")
        };
        assert!(rounds <= 15, "within 3n rounds, got {rounds}");
        assert!(g.causal_ok());
        // Convergence + acked contexts drain every per-peer buffer (one
        // extra quiescent round delivers the final acks).
        g.round();
        g.round();
        assert_eq!(g.buffered_dots(), 0, "ack-driven GC leaves nothing parked");
        assert!(obs.get(Counter::NetGossipGcDots) > 0);
        assert!(obs.get(Counter::NetGossipDeltasApplied) > 0);
    }

    #[test]
    fn partitioned_replicas_converge_after_the_heal() {
        let mut cfg = GossipConfig::new(4, 7).with_interval(u64::MAX);
        cfg.net = cfg
            .net
            .with_fault(NetFault::Partition { at: 0, nodes: vec![2, 3] })
            .with_fault(NetFault::Heal { at: 2_000 });
        let mut g = GossipBackend::new(cfg);
        for i in 0..16u64 {
            g.write(Pid(0), i, RegKey::new(0).at(0, i as u32), Value::Int(i as i64));
        }
        // Rounds during the partition cannot converge the cut pair; the
        // failed exchanges' timeouts advance the clock toward the heal.
        assert!(g.run_rounds_until_converged(8).is_none() || g.net.now() >= 2_000);
        while g.net.now() < 2_000 {
            g.round();
        }
        assert!(g.run_rounds_until_converged(3 * 4).is_some(), "healed cluster converges");
        assert!(g.causal_ok());
    }

    #[test]
    fn stale_reads_degrade_typed_after_the_horizon() {
        // The key's home is partitioned from round one and crashes for
        // good: its fresh delta is unreachable, so reads served by the
        // fallback replica stay stale — counted at first, escalated to a
        // typed AdviceStale (never a panic) once the crashed-home horizon
        // passes, at most one per replica per round.
        let n = 3;
        let key = key_homed_at(0, n);
        let mut cfg = GossipConfig::new(n, 7);
        cfg.net = cfg
            .net
            .with_fault(NetFault::Partition { at: 0, nodes: vec![0] })
            .with_fault(NetFault::CrashReplica { at: 40, node: 0 });
        let mut g = GossipBackend::new(cfg);
        let obs = MetricsHandle::counters();
        let _guard = obs_local::enter(&obs, 0, 0);
        g.write(Pid(0), 0, key, Value::Int(9)); // lands at home 0, never propagates
        let mut degraded = Vec::new();
        for i in 1..40u64 {
            let v = g.read(Pid(1), i, key);
            assert_eq!(v, Value::Unit, "fallback replica never saw the write");
            degraded.extend(g.drain_degradations());
        }
        assert!(obs.get(Counter::NetGossipStaleReads) > 0);
        assert!(!degraded.is_empty(), "the horizon must have expired");
        let d = &degraded[0];
        assert_eq!(d.kind, DegradationKind::AdviceStale);
        assert_eq!((d.op.as_str(), d.key, d.nodes), ("read", key, n));
        assert!(d.answered > d.needed, "lag beyond the horizon: {d}");
        assert!(d.to_string().starts_with("advice-stale: op=read"), "got {d}");
        // Rate limit: strictly fewer degradations than stale reads.
        assert!((degraded.len() as u64) < obs.get(Counter::NetGossipStaleReads));
    }

    #[test]
    fn crashed_home_self_heals_from_the_log_on_recovery() {
        let n = 3;
        let key = key_homed_at(0, n);
        let mut cfg = GossipConfig::new(n, 7);
        cfg.net = cfg
            .net
            .with_fault(NetFault::Partition { at: 0, nodes: vec![0] })
            .with_fault(NetFault::CrashReplica { at: 40, node: 0 })
            .with_fault(NetFault::RecoverReplica { at: 400, node: 0 })
            .with_fault(NetFault::Heal { at: 400 });
        let mut g = GossipBackend::new(cfg);
        g.write(Pid(0), 0, key, Value::Int(9));
        while g.runtime().now() < 400 {
            g.read(Pid(1), 1, key); // rounds advance the clock through the churn
        }
        assert!(!g.drain_degradations().is_empty(), "the churn degraded the key's advice");
        // Recovery re-merged the wiped home's own-origin deltas from the
        // write-ahead log: the preferred home serves fresh again.
        assert_eq!(g.read(Pid(1), 2, key), Value::Int(9));
        // The first fresh read after the heal is the spell's resolved edge
        // (it may land inside the churn loop's final iteration, whose round
        // carries the clock across the recovery tick).
        let resolved = g.drain_resolutions();
        assert_eq!(resolved.len(), 1, "one spell, one resolution");
        let r = &resolved[0];
        assert_eq!((r.kind, r.key), (DegradationKind::AdviceStale, key));
        assert!(r.degrade_tick < r.resolve_tick, "the spell has positive extent");
        assert_eq!(r.time_to_recovery(), r.resolve_tick - r.degrade_tick);
        assert!(g.drain_resolutions().is_empty(), "drain empties the stream");
        assert!(g.run_rounds_until_converged(3 * 3).is_some());
        assert!(g.causal_ok());
    }

    #[test]
    #[should_panic(expected = "gossip: non-monotone register program")]
    fn erasure_is_refused_without_the_unsafe_gate() {
        let mut g = backend(3, 7);
        let key = RegKey::new(0);
        g.write(Pid(0), 0, key, Value::Int(1));
        g.write(Pid(0), 1, key, Value::Unit); // erases a value — not a join
    }

    #[test]
    fn the_unsafe_gate_accepts_erasures() {
        let mut cfg = GossipConfig::new(3, 7);
        cfg.allow_nonmonotone = true;
        let mut g = GossipBackend::new(cfg);
        let key = RegKey::new(0);
        g.write(Pid(0), 0, key, Value::Int(1));
        g.write(Pid(0), 1, key, Value::Unit);
        assert_eq!(g.read(Pid(1), 2, key), Value::Unit, "the erasure wins the seq chain");
    }

    #[test]
    fn backend_is_deterministic_and_forks() {
        let run = |ops: usize| {
            let mut g = backend(4, 11);
            for i in 0..ops as u64 {
                g.write(Pid(0), i, RegKey::new(0).at(0, (i % 4) as u32), Value::Int(i as i64));
            }
            let mut h = std::collections::hash_map::DefaultHasher::new();
            MemoryBackend::fingerprint(&g, &mut h);
            h.finish()
        };
        assert_eq!(run(10), run(10));
        assert_ne!(run(10), run(11));
        let mut a = backend(3, 2);
        a.write(Pid(0), 0, RegKey::new(0), Value::Int(1));
        let mut b: Box<dyn MemoryBackend> = a.clone_backend();
        b.write(Pid(1), 1, RegKey::new(0), Value::Int(2));
        assert_eq!(a.read(Pid(0), 2, RegKey::new(0)), Value::Int(1));
        assert_eq!(b.read(Pid(0), 2, RegKey::new(0)), Value::Int(2));
        assert_eq!(b.label(), "gossip(n=3)");
    }

    #[test]
    fn the_oracle_surface_is_reachable_through_the_seam() {
        let mut boxed: Box<dyn MemoryBackend> = Box::new(backend(3, 7));
        boxed.write(Pid(0), 0, RegKey::new(0), Value::Int(5));
        let g = boxed
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<GossipBackend>())
            .expect("the gossip backend exposes its oracles");
        assert!(g.run_rounds_until_converged(9).is_some());
        assert!(g.causal_ok());
    }
}
