//! Gossip backend configuration: the wrapped network plus the anti-entropy
//! policy knobs.
//!
//! A [`GossipConfig`] is to the gossip backend what a
//! [`wfa_net::config::NetConfig`] is to the ABD backend: it fully determines
//! every exchange the substrate performs, so a gossip run is a pure function
//! of `(config, operation sequence)` and replays byte-identically.

use wfa_net::config::NetConfig;

/// Full description of a gossip substrate: the simulated network it rides
/// (replica count, link timing, faults) and the anti-entropy policy.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GossipConfig {
    /// The simulated network the anti-entropy exchanges ride. `nodes` is the
    /// replica count; the fault list (partitions, drops, crash/recover,
    /// corruption windows) applies to exchange messages exactly as it does
    /// to ABD quorum traffic.
    pub net: NetConfig,
    /// Backend register operations between anti-entropy rounds. `1` (the
    /// default) runs a round before every op — the eager regime where clean
    /// runs stay closest to shared memory; larger intervals trade staleness
    /// for messages.
    pub interval: u64,
    /// Anti-entropy rounds a replica may go without one successful exchange
    /// before its stale reads degrade to a typed `AdviceStale` outcome.
    /// Reads within the horizon are merely counted (`net_gossip_stale_reads`).
    pub stale_horizon: u64,
    /// Accept non-monotone register programs (ones that erase a register by
    /// writing `⊥` over a value — a transition a join can never propagate).
    /// Off by default; the CLI surfaces it as `--gossip-unsafe`.
    pub allow_nonmonotone: bool,
}

impl GossipConfig {
    /// An eager gossip substrate over a healthy `nodes`-replica network.
    pub fn new(nodes: usize, seed: u64) -> GossipConfig {
        GossipConfig {
            net: NetConfig::new(nodes, seed),
            interval: 1,
            stale_horizon: 4,
            allow_nonmonotone: false,
        }
    }

    /// Builder-style interval override.
    pub fn with_interval(mut self, interval: u64) -> GossipConfig {
        self.interval = interval.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_eager_guarded_regime() {
        let cfg = GossipConfig::new(4, 7);
        assert_eq!(cfg.net.nodes, 4);
        assert_eq!(cfg.interval, 1);
        assert_eq!(cfg.stale_horizon, 4);
        assert!(!cfg.allow_nonmonotone);
        assert_eq!(cfg.with_interval(0).interval, 1, "interval is clamped to 1");
    }
}
