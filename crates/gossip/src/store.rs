//! The delta-state store: lattice entries, dots, causal contexts, and the
//! Merkle digest tree.
//!
//! Every write the backend accepts becomes a **delta**: a lattice entry
//! (globally sequenced, so entries are totally ordered and join = max) tagged
//! with a **dot** `(origin, index)` — the `index`-th delta minted at replica
//! `origin`. A replica's state is the join of the deltas it has merged, and
//! its **causal context** records exactly which: per-origin contiguous dot
//! prefixes (exchanges always ship contiguous ranges, so contexts never have
//! gaps). Two replicas compare state in O(1) by exchanging the roots of
//! their [`DigestTree`]s — a binary Merkle tree over the dense slot array —
//! and locate differing registers in O(log slots) by descending it.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use wfa_kernel::value::Value;
use wfa_net::runtime::mix;

/// One register's lattice point: the globally `seq`-stamped value of the
/// latest write merged into a replica. The kernel performs at most one
/// register operation per schedule step, so writes are already totally
/// ordered; stamping them with that order makes every per-register lattice a
/// chain (`join = max by seq`) and the global join equal to the linearized
/// shared-memory contents.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Entry {
    /// Global write sequence number (1-based; unique across all registers).
    pub seq: u64,
    /// The process that performed the write.
    pub writer: u32,
    /// The written value.
    pub val: Value,
}

/// A delta's identity: the `index`-th delta minted at replica `origin`
/// (1-based, contiguous per origin).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Dot {
    /// Replica that minted the delta.
    pub origin: usize,
    /// Position in that origin's mint order.
    pub index: u64,
}

/// One delta record of the write-ahead delta log: which dot carried which
/// entry into which slot.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DeltaRec {
    /// The delta's identity.
    pub dot: Dot,
    /// Dense slot index of the register it updates.
    pub slot: usize,
    /// The lattice entry it contributes.
    pub entry: Entry,
}

/// One replica's delta-state: the per-slot joins it has accumulated and the
/// causal context saying which dots produced them.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ReplicaStore {
    /// Dense per-register lattice points; `None` is the lattice bottom
    /// (never-written, or not yet received here).
    pub slots: Vec<Option<Entry>>,
    /// Causal context: `ctx[o]` = number of origin-`o` dots merged (always a
    /// contiguous prefix of that origin's mint order).
    pub ctx: Vec<u64>,
}

impl ReplicaStore {
    /// An empty store over `origins` replicas.
    pub fn new(origins: usize) -> ReplicaStore {
        ReplicaStore { slots: Vec::new(), ctx: vec![0; origins] }
    }

    /// Grows the slot array to cover `slots` registers.
    pub fn ensure_slots(&mut self, slots: usize) {
        if self.slots.len() < slots {
            self.slots.resize(slots, None);
        }
    }

    /// Merges one delta. Returns `true` iff the dot was fresh here (it
    /// advanced the causal context); duplicates are ignored. Exchanges ship
    /// contiguous per-origin ranges, so a gap is a protocol bug.
    pub fn merge(&mut self, rec: &DeltaRec) -> bool {
        let seen = &mut self.ctx[rec.dot.origin];
        if rec.dot.index <= *seen {
            return false; // duplicate: joins are idempotent
        }
        debug_assert_eq!(
            rec.dot.index,
            *seen + 1,
            "exchange shipped a non-contiguous dot range (origin {})",
            rec.dot.origin
        );
        *seen = rec.dot.index;
        self.ensure_slots(rec.slot + 1);
        let cell = &mut self.slots[rec.slot];
        // Join = max by the global write sequence; ties cannot happen (seq
        // is unique), so `>` alone decides.
        if cell.as_ref().is_none_or(|cur| rec.entry.seq > cur.seq) {
            *cell = Some(rec.entry.clone());
        }
        true
    }

    /// Wipes the volatile state (a replica crash): slots and context reset
    /// to bottom. Dot counters live with the backend, not the replica, so
    /// recovery never forks a mint order.
    pub fn wipe(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.ctx.iter_mut().for_each(|c| *c = 0);
    }

    /// `ctx[o]` with bounds slack for oracles.
    pub fn seen(&self, origin: usize) -> u64 {
        self.ctx.get(origin).copied().unwrap_or(0)
    }

    /// The digest tree over this store's current slots.
    pub fn digest_tree(&self, slots: usize) -> DigestTree {
        DigestTree::over(&self.slots, slots)
    }
}

/// Stable 64-bit hash of one slot's lattice point (`0` for bottom is fine:
/// leaf hashes are salted with the slot index, so position still matters).
fn slot_hash(entry: &Option<Entry>) -> u64 {
    match entry {
        None => 0,
        Some(e) => {
            let mut h = DefaultHasher::new();
            e.hash(&mut h);
            h.finish()
        }
    }
}

/// A binary Merkle tree over the dense slot array. Quiescent peers compare
/// roots in one message each; differing peers locate the unequal registers
/// by descending level-by-level — O(log slots) comparisons.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DigestTree {
    /// `levels[0]` = salted leaf hashes (padded to a power of two);
    /// `levels.last()` = the root.
    levels: Vec<Vec<u64>>,
}

impl DigestTree {
    /// Builds the tree over the first `slots` entries of `store` (absent
    /// tails hash as bottom, so replicas with short slot arrays compare
    /// correctly against longer ones).
    pub fn over(store: &[Option<Entry>], slots: usize) -> DigestTree {
        let width = slots.next_power_of_two().max(1);
        let mut leaves = vec![0u64; width];
        for (i, leaf) in leaves.iter_mut().enumerate() {
            let h = store.get(i).map_or(0, slot_hash);
            *leaf = mix(h ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        let mut levels = vec![leaves];
        while levels.last().map(Vec::len).unwrap_or(1) > 1 {
            let below = levels.last().unwrap();
            let up: Vec<u64> = below
                .chunks(2)
                .map(|pair| mix(pair[0] ^ pair.get(1).copied().unwrap_or(0).rotate_left(17)))
                .collect();
            levels.push(up);
        }
        DigestTree { levels }
    }

    /// The root digest.
    pub fn root(&self) -> u64 {
        *self.levels.last().and_then(|l| l.first()).expect("tree always has a root")
    }

    /// Tree height (root-comparison excluded): the number of levels a
    /// descent traverses, i.e. `ceil(log2(slots))`.
    pub fn height(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// Slots where `self` and `other` disagree, found by Merkle descent.
    /// Returns `(differing slots, nodes compared)` — the comparison count is
    /// what the O(log) claim is about, and tests pin it.
    pub fn diff(&self, other: &DigestTree) -> (Vec<usize>, usize) {
        let mut compared = 1usize;
        if self.root() == other.root() && self.levels.len() == other.levels.len() {
            return (Vec::new(), compared);
        }
        // Height mismatch (one side interned more registers): fall back to
        // comparing the shared prefix leaf-wise plus the longer tail.
        let (a, b) = (&self.levels[0], &other.levels[0]);
        if self.levels.len() != other.levels.len() {
            let n = a.len().max(b.len());
            let diffs = (0..n)
                .filter(|i| a.get(*i).copied().unwrap_or(0) != b.get(*i).copied().unwrap_or(0))
                .collect();
            return (diffs, compared + n);
        }
        // Equal shapes: descend from the root, expanding unequal nodes.
        let mut frontier = vec![0usize]; // node indices at the current level
        for depth in (0..self.levels.len() - 1).rev() {
            let (la, lb) = (&self.levels[depth], &other.levels[depth]);
            let mut next = Vec::new();
            for node in frontier {
                for child in [2 * node, 2 * node + 1] {
                    if child < la.len() {
                        compared += 1;
                        if la[child] != lb[child] {
                            next.push(child);
                        }
                    }
                }
            }
            frontier = next;
        }
        (frontier, compared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seq: u64, v: i64) -> Entry {
        Entry { seq, writer: 0, val: Value::Int(v) }
    }

    #[test]
    fn merge_is_idempotent_and_joins_by_seq() {
        let mut r = ReplicaStore::new(2);
        let newer = DeltaRec { dot: Dot { origin: 0, index: 1 }, slot: 0, entry: entry(5, 50) };
        let older = DeltaRec { dot: Dot { origin: 1, index: 1 }, slot: 0, entry: entry(3, 30) };
        assert!(r.merge(&newer));
        assert!(!r.merge(&newer), "duplicates are ignored");
        assert!(r.merge(&older), "the dot is fresh even though the entry loses the join");
        assert_eq!(r.slots[0].as_ref().unwrap().seq, 5, "join keeps the max-seq entry");
        assert_eq!(r.ctx, vec![1, 1]);
    }

    #[test]
    fn merge_order_does_not_matter_for_the_join() {
        let recs = [
            DeltaRec { dot: Dot { origin: 0, index: 1 }, slot: 0, entry: entry(1, 10) },
            DeltaRec { dot: Dot { origin: 0, index: 2 }, slot: 1, entry: entry(2, 20) },
            DeltaRec { dot: Dot { origin: 1, index: 1 }, slot: 0, entry: entry(3, 30) },
        ];
        let mut fwd = ReplicaStore::new(2);
        recs.iter().for_each(|r| {
            fwd.merge(r);
        });
        // Per-origin order is fixed (contiguity), but origins may interleave
        // any way: origin 1 first is equally legal.
        let mut rev = ReplicaStore::new(2);
        [&recs[2], &recs[0], &recs[1]].into_iter().for_each(|r| {
            rev.merge(r);
        });
        assert_eq!(fwd, rev, "joins commute");
        assert_eq!(fwd.slots[0].as_ref().unwrap().val, Value::Int(30));
    }

    #[test]
    fn wipe_resets_to_bottom_without_touching_capacity() {
        let mut r = ReplicaStore::new(1);
        r.merge(&DeltaRec { dot: Dot { origin: 0, index: 1 }, slot: 2, entry: entry(1, 1) });
        r.wipe();
        assert!(r.slots.iter().all(Option::is_none));
        assert_eq!(r.seen(0), 0);
        assert_eq!(r.slots.len(), 3, "capacity survives; contents do not");
    }

    #[test]
    fn equal_stores_have_equal_roots() {
        let mut a = ReplicaStore::new(1);
        let mut b = ReplicaStore::new(1);
        for i in 0..10 {
            let rec = DeltaRec {
                dot: Dot { origin: 0, index: i + 1 },
                slot: i as usize,
                entry: entry(i + 1, i as i64),
            };
            a.merge(&rec);
            b.merge(&rec);
        }
        assert_eq!(a.digest_tree(10).root(), b.digest_tree(10).root());
        let (diffs, compared) = a.digest_tree(10).diff(&b.digest_tree(10));
        assert!(diffs.is_empty());
        assert_eq!(compared, 1, "quiescent peers compare exactly one digest");
    }

    #[test]
    fn diff_locates_the_single_differing_slot_in_logarithmic_comparisons() {
        let slots = 64usize;
        let mut a = ReplicaStore::new(1);
        let mut b = ReplicaStore::new(1);
        for i in 0..slots {
            let rec = DeltaRec {
                dot: Dot { origin: 0, index: i as u64 + 1 },
                slot: i,
                entry: entry(i as u64 + 1, i as i64),
            };
            a.merge(&rec);
            b.merge(&rec);
        }
        // One extra write lands only at `a`.
        a.merge(&DeltaRec {
            dot: Dot { origin: 0, index: slots as u64 + 1 },
            slot: 37,
            entry: entry(slots as u64 + 1, -1),
        });
        let (diffs, compared) = a.digest_tree(slots).diff(&b.digest_tree(slots));
        assert_eq!(diffs, vec![37]);
        // A descent expands two children per unequal node per level:
        // 1 root + 2·height comparisons for a single differing leaf.
        let height = a.digest_tree(slots).height();
        assert_eq!(height, 6);
        assert_eq!(compared, 1 + 2 * height, "O(log slots), not O(slots)");
    }

    #[test]
    fn short_and_long_slot_arrays_compare_correctly() {
        let mut a = ReplicaStore::new(1);
        let b = ReplicaStore::new(1);
        a.merge(&DeltaRec { dot: Dot { origin: 0, index: 1 }, slot: 0, entry: entry(1, 9) });
        // Same width request: b's absent slots hash as bottom.
        let (diffs, _) = a.digest_tree(1).diff(&b.digest_tree(1));
        assert_eq!(diffs, vec![0]);
    }
}
