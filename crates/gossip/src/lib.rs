//! # wfa-gossip — delta-CRDT anti-entropy advice substrate
//!
//! The third register backend of the wait-freedom-with-advice tree, after
//! in-process `SharedMemory` and the `wfa-net` ABD quorum emulation: an
//! *eventually-consistent* substrate where reads and writes are
//! replica-local (zero messages on the op path) and freshness travels
//! between ops through periodic anti-entropy rounds.
//!
//! The design is the standard delta-state CRDT stack, specialised to the
//! kernel's sequential op model:
//!
//! * [`store`] — join-semilattice register entries (globally sequenced, so
//!   join = max and the global join equals the linearized contents), dots
//!   and per-origin causal contexts, the append-only delta log, and the
//!   Merkle digest tree that lets quiescent peers sync in O(1) messages
//!   and diverging peers locate differences in O(log registers).
//! * [`backend`] — [`backend::GossipBackend`], the `MemoryBackend`
//!   implementation: key-homed ops, per-peer delta buffers with ack-driven
//!   GC, seeded circulant exchange rounds over the deterministic
//!   `wfa-net` runtime (every fault the net models applies to exchange
//!   traffic), typed `AdviceStale` degradation for horizon-stale reads,
//!   and the convergence/causal-delivery oracles fault sweeps drive.
//! * [`config`] — [`config::GossipConfig`]: the wrapped `NetConfig` plus
//!   the anti-entropy interval, staleness horizon, and the
//!   non-monotone-program gate (`--gossip-unsafe`).
//!
//! The substrate is *correct for the monotone advice/FD register class*:
//! advice served from a lagging replica is stale, never wrong, and joins
//! can never retract a value a reader observed. The one non-monotone
//! transition the kernel's registers allow — erasing a register by writing
//! `⊥` over a value — is refused at runtime unless explicitly accepted.

pub mod backend;
pub mod config;
pub mod store;

/// Common imports for driving a gossip-backed run.
pub mod prelude {
    pub use crate::backend::GossipBackend;
    pub use crate::config::GossipConfig;
}
