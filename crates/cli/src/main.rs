//! `wfa-cli` — run the *Wait-Freedom with Advice* experiments from the
//! command line.
//!
//! ```text
//! wfa-cli ksa       --n 4 --k 2 --stab 200 --seed 7   EFD k-set agreement, one run
//! wfa-cli rename    --j 3 --seeds 60                  renaming namespace sweep
//! wfa-cli hierarchy --n 4 --runs 400                  Theorem-10 classification table
//! wfa-cli refute                                      Lemma-11 refutation pipeline
//! wfa-cli extract   --slots 600000 --stab 300         Figure-1 ¬Ω1 extraction
//! wfa-cli faults sweep --scenario ksa --depth 2       adversarial fault sweep
//! wfa-cli faults replay violation.json                re-execute a violation artifact
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency set at the workspace baseline.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

use wfa::algorithms::one_concurrent::OneConcurrentSolver;
use wfa::algorithms::renaming::RenamingFig4;
use wfa::algorithms::set_agreement::{SetAgreementC, SetAgreementS};
use wfa::core::classify::{concurrency_profile, ProbeOutcome};
use wfa::core::harness::{EfdRun, RunReport};
use wfa::core::reduction::{emulated_key, AsimBuilders, ReductionS};
use wfa::fd::detectors::{FdGen, HistoryEntry};
use wfa::fd::pattern::FailurePattern;
use wfa::fd::spec::check_anti_omega_k;
use wfa::kernel::executor::Executor;
use wfa::kernel::process::DynProcess;
use wfa::kernel::sched::{run_schedule, KConcurrent, NullEnv, RandomSched, Scheduler};
use wfa::kernel::value::{Pid, Value};
use wfa::modelcheck::explorer::Limits;
use wfa::modelcheck::lemma11::refute_strong_2_renaming;
use wfa::tasks::agreement::SetAgreement;
use wfa::tasks::renaming::Renaming;
use wfa::tasks::task::Task;

/// Parsed `--key value` arguments with typed accessors.
struct Args(HashMap<String, String>);

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut map = HashMap::new();
        let mut it = raw.iter();
        while let Some(k) = it.next() {
            let Some(key) = k.strip_prefix("--") else {
                return Err(format!("expected --key, got `{k}`"));
            };
            let Some(v) = it.next() else {
                return Err(format!("missing value for --{key}"));
            };
            map.insert(key.to_string(), v.clone());
        }
        Ok(Args(map))
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: `{v}`")),
        }
    }
}

fn cmd_ksa(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 4)?;
    let k: usize = args.get("k", 2)?;
    let stab: u64 = args.get("stab", 200)?;
    let seed: u64 = args.get("seed", 7)?;
    let crashes: usize = args.get("crashes", 1)?;
    if k == 0 || k > n {
        return Err("need 1 ≤ k ≤ n".into());
    }
    let pattern = wfa::fd::environment::Environment::up_to(n, crashes.min(n - 1))
        .sample(seed, stab.max(1));
    println!("pattern  : {pattern}");
    let fd = FdGen::vector_omega_k(pattern, k, stab, seed);
    println!("detector : {} (stab {stab})", fd.name());
    let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
    let c: Vec<Box<dyn DynProcess>> = inputs
        .iter()
        .enumerate()
        .map(|(i, v)| Box::new(SetAgreementC::new(i, k as u32, v.clone())) as Box<dyn DynProcess>)
        .collect();
    let s: Vec<Box<dyn DynProcess>> = (0..n)
        .map(|q| {
            Box::new(SetAgreementS::new(q as u32, n as u32, n, k as u32)) as Box<dyn DynProcess>
        })
        .collect();
    let mut run = EfdRun::new(c, s, fd);
    let mut sched = run.fair_sched(seed ^ 0xc11);
    let slots = run.run_until_decided(&mut sched, 5_000_000);
    let task = SetAgreement::new(n, k);
    let report = RunReport::evaluate(
        &run,
        &task,
        &inputs,
        wfa::kernel::sched::StopReason::ScheduleEnded,
    );
    for (i, (inp, out)) in report.input.iter().zip(&report.output).enumerate() {
        println!("C{i}: input={inp} output={out} ({} own steps)", report.c_steps[i]);
    }
    match (&report.verdict, slots) {
        (Ok(()), Some(slots)) => {
            println!("ok: all decided in {slots} slots, Δ satisfied");
            Ok(())
        }
        (Err(e), _) => Err(format!("task violated: {e}")),
        (Ok(()), None) => Err("budget exhausted before all decisions".into()),
    }
}

fn cmd_rename(args: &Args) -> Result<(), String> {
    let j: usize = args.get("j", 3)?;
    let seeds: u64 = args.get("seeds", 60)?;
    let m = j + 1;
    println!("(j = {j}) max observed name over {seeds} seeded k-concurrent ensembles:");
    println!("{:>4} {:>8} {:>8}", "k", "bound", "observed");
    for k in 1..=j {
        let mut max_name = 0i64;
        for seed in 0..seeds {
            let mut ex = Executor::new();
            let pids: Vec<Pid> =
                (0..j).map(|i| ex.add_process(Box::new(RenamingFig4::new(i, m)))).collect();
            let mut sched = KConcurrent::with_seed(pids.clone(), [], k, seed);
            run_schedule(&mut ex, &mut sched, &mut NullEnv, 5_000_000);
            for p in &pids {
                max_name =
                    max_name.max(ex.status(*p).decision().and_then(Value::as_int).unwrap_or(0));
            }
        }
        println!("{:>4} {:>8} {:>8}", k, j + k - 1, max_name);
    }
    Ok(())
}

fn cmd_hierarchy(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 4)?;
    let runs: u32 = args.get("runs", 400)?;
    println!("Theorem-10 classification over n = {n} ({runs} runs per cell)");
    for k_task in 1..=n {
        let task: Arc<dyn Task> = Arc::new(SetAgreement::new(n, k_task));
        let t2 = task.clone();
        let algo = move |i: usize, input: &Value| {
            Box::new(OneConcurrentSolver::new(i, t2.clone(), input.clone())) as Box<dyn DynProcess>
        };
        let (level, rows) = concurrency_profile(&task, &algo, n, runs, 200_000, 11);
        let cells: String = rows
            .iter()
            .map(|r| match r.outcome {
                ProbeOutcome::Satisfied { .. } => " ✓",
                ProbeOutcome::Violated { .. } => " ✗",
                ProbeOutcome::Stuck { .. } => " ∅",
            })
            .collect();
        println!("{:<22}{}  → class {:?}", task.name(), cells, level);
    }
    let j = (n - 1).max(2);
    let task: Arc<dyn Task> = Arc::new(Renaming::strong(n, j));
    let algo = move |i: usize, _input: &Value| {
        Box::new(RenamingFig4::new(i, 4)) as Box<dyn DynProcess>
    };
    let (level, _) = concurrency_profile(&task, &algo, n.min(3), runs, 300_000, 13);
    println!("{:<22}  → class {:?}", task.name(), level);
    Ok(())
}

fn cmd_refute(_args: &Args) -> Result<(), String> {
    let cand = |i: usize| Box::new(RenamingFig4::new(i, 4)) as Box<dyn DynProcess>;
    let r = refute_strong_2_renaming(&cand, &[0, 1, 2], Limits::default());
    println!("colliding solo slots: p{} and p{}", r.colliding.0, r.colliding.1);
    println!("states explored     : {}", r.report.states);
    match (&r.report.violation, &r.report.undecided_cycle) {
        (Some((reason, sched)), _) => {
            println!("counterexample      : {reason} (schedule length {})", sched.len())
        }
        (None, Some(sched)) => {
            println!("counterexample      : forever-undecided cycle at depth {}", sched.len())
        }
        _ => return Err("no counterexample found (Lemma 11 violated?!)".into()),
    }
    Ok(())
}

fn cmd_extract(args: &Args) -> Result<(), String> {
    let slots: u64 = args.get("slots", 600_000)?;
    let stab: u64 = args.get("stab", 300)?;
    let seed: u64 = args.get("seed", 42)?;
    let n = 3;
    fn c_part(i: usize, input: &Value) -> Box<dyn DynProcess> {
        Box::new(SetAgreementC::new(i, 1, input.clone()))
    }
    fn s_part(q: usize) -> Box<dyn DynProcess> {
        Box::new(SetAgreementS::new(q as u32, 3, 3, 1))
    }
    let builders = AsimBuilders { c_part, s_part };
    let inputs: Vec<Vec<Value>> = vec![(0..n as i64).map(Value::Int).collect()];
    let pattern = FailurePattern::failure_free(n);
    let mut fd = FdGen::vector_omega_k(pattern.clone(), 1, stab, seed);
    let mut ex = Executor::new();
    for q in 0..n {
        ex.add_process(Box::new(ReductionS::new(q, n, 1, builders, inputs.clone())));
    }
    let mut sched = RandomSched::over_all(&ex, seed ^ 0xe4);
    let mut history: Vec<HistoryEntry> = Vec::new();
    for step in 0..slots {
        let Some(pid) = sched.next(&ex) else { break };
        let now = ex.clock();
        let fdv = fd.output(pid.0, now);
        ex.step(pid, Some(&fdv));
        if step % 16 == 0 {
            let v = ex.memory().peek(emulated_key(pid.0 as u32));
            if !v.is_unit() {
                history.push(HistoryEntry { q: pid.0, t: now, val: v });
            }
        }
    }
    println!("samples recorded: {}", history.len());
    match check_anti_omega_k(&pattern, &history, 1, 5_000) {
        Some(w) => {
            println!("¬Ω1 extracted: correct S{} excluded from τ = {}", w.who, w.tau);
            Ok(())
        }
        None => Err("extraction did not stabilize within the budget".into()),
    }
}

fn cmd_faults(argv: &[String]) -> Result<(), String> {
    use wfa::faults::prelude::*;

    const FAULTS_USAGE: &str = "USAGE: wfa-cli faults <sweep|replay|list>\n\
         \n\
         faults sweep  --scenario NAME [--depth D --seeds S --seed B --threads T --out FILE]\n\
         \n\
         \tEnumerates every fault plan of ≤ D components (bounded DFS over\n\
         \tcrash points, starvation stops, FD sample corruption and advice\n\
         \tdelays), evaluates S seeds per plan with panic isolation, shrinks\n\
         \tthe violations and prints them. --out writes the canonical report\n\
         \tJSON (byte-identical for every --threads value). Exits non-zero\n\
         \tif violations were found.\n\
         \n\
         faults replay <violation.json>\n\
         \n\
         \tRe-executes a serialized violation artifact from scratch and\n\
         \treports whether it still reproduces. Exits non-zero if not.\n\
         \n\
         faults list\n\
         \n\
         \tNames of the canonical scenarios.";

    match argv.first().map(String::as_str) {
        Some("sweep") => {
            let args = Args::parse(&argv[1..])?;
            let mut config = SweepConfig::new(&args.get("scenario", "adopt-commit".to_string())?);
            config.depth = args.get("depth", 2)?;
            config.seeds_per_plan = args.get("seeds", 2)?;
            config.base_seed = args.get("seed", 1)?;
            let threads: usize = args.get("threads", 0)?;
            if threads > 0 {
                config.threads = Some(threads);
            }
            if Scenario::by_name(&config.scenario).is_none() {
                return Err(format!(
                    "unknown scenario `{}` (try: {})",
                    config.scenario,
                    Scenario::catalog().join(", ")
                ));
            }
            let report = sweep(&config);
            println!(
                "[{}] {} plans, {} runs ({} worker threads): {} violation(s)",
                report.scenario,
                report.plans,
                report.runs,
                config.resolved_threads(),
                report.violations.len()
            );
            for v in &report.violations {
                println!("  {v}");
            }
            if let Some(path) = args.0.get("out") {
                std::fs::write(path, report.to_json().to_string())
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("report written to {path}");
            }
            if report.violations.is_empty() {
                Ok(())
            } else {
                Err(format!("{} violation(s) found", report.violations.len()))
            }
        }
        Some("replay") => {
            let Some(path) = argv.get(1) else {
                return Err(format!("missing artifact path\n\n{FAULTS_USAGE}"));
            };
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let json = Json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
            // Accept both a bare violation and a full sweep report.
            let violations: Vec<Violation> = match json.get("violations") {
                Some(arr) => arr
                    .arr()
                    .ok_or_else(|| "malformed report: violations is not an array".to_string())?
                    .iter()
                    .map(Violation::from_json)
                    .collect::<Result<_, _>>()?,
                None => vec![Violation::from_json(&json)?],
            };
            if violations.is_empty() {
                println!("artifact holds no violations — nothing to replay");
                return Ok(());
            }
            let mut failed = 0;
            for v in &violations {
                let verdict = replay(v)?;
                let mark = if verdict.reproduced { "reproduced" } else { "NOT reproduced" };
                println!("{mark}: {v}\n  {}", verdict.detail);
                if !verdict.reproduced {
                    failed += 1;
                }
            }
            if failed == 0 {
                Ok(())
            } else {
                Err(format!("{failed} of {} violation(s) did not reproduce", violations.len()))
            }
        }
        Some("list") => {
            for name in Scenario::catalog() {
                let sc = Scenario::by_name(name).expect("catalog names resolve");
                println!("{name:<16} n={} budget={} ({})", sc.n, sc.budget, sc.task.name());
            }
            Ok(())
        }
        Some("help") | None => {
            println!("{FAULTS_USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown faults subcommand `{other}`\n\n{FAULTS_USAGE}")),
    }
}

fn usage() -> &'static str {
    "wfa-cli — Wait-Freedom with Advice, runnable\n\
     \n\
     USAGE: wfa-cli <command> [--key value ...]\n\
     \n\
     COMMANDS\n\
       ksa        EFD k-set agreement   (--n --k --stab --seed --crashes)\n\
       rename     renaming sweep        (--j --seeds)\n\
       hierarchy  Theorem-10 table      (--n --runs)\n\
       refute     Lemma-11 pipeline\n\
       extract    Figure-1 extraction   (--slots --stab --seed)\n\
       faults     adversarial fault injection (sweep | replay | list)\n\
       help       this text"
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    // `faults` has sub-commands and positional operands, so it parses its own
    // argument list instead of going through the global --key value parser.
    if cmd == "faults" {
        return match cmd_faults(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "ksa" => cmd_ksa(&args),
        "rename" => cmd_rename(&args),
        "hierarchy" => cmd_hierarchy(&args),
        "refute" => cmd_refute(&args),
        "extract" => cmd_extract(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
