//! `wfa-cli` — run the *Wait-Freedom with Advice* experiments from the
//! command line.
//!
//! ```text
//! wfa-cli ksa       --n 4 --k 2 --stab 200 --seed 7   EFD k-set agreement, one run
//! wfa-cli rename    --j 3 --seeds 60                  renaming namespace sweep
//! wfa-cli hierarchy --n 4 --runs 400                  Theorem-10 classification table
//! wfa-cli refute                                      Lemma-11 refutation pipeline
//! wfa-cli extract   --slots 600000 --stab 300         Figure-1 ¬Ω1 extraction
//! wfa-cli faults sweep --scenario ksa --depth 2       adversarial fault sweep
//! wfa-cli faults replay violation.json                re-execute a violation artifact
//! wfa-cli obs summary --source figure2                deterministic metrics snapshot
//! wfa-cli obs export --format chrome --out t.json     chrome://tracing export
//! ```
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency set at the workspace baseline.

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;

use wfa::algorithms::one_concurrent::OneConcurrentSolver;
use wfa::algorithms::renaming::RenamingFig4;
use wfa::algorithms::set_agreement::{SetAgreementC, SetAgreementS};
use wfa::core::classify::{concurrency_profile, ProbeOutcome};
use wfa::core::harness::{EfdRun, RunReport};
use wfa::core::reduction::{emulated_key, AsimBuilders, ReductionS};
use wfa::fd::detectors::{FdGen, HistoryEntry};
use wfa::fd::pattern::FailurePattern;
use wfa::fd::spec::check_anti_omega_k;
use wfa::kernel::executor::Executor;
use wfa::kernel::process::DynProcess;
use wfa::kernel::sched::{run_schedule, KConcurrent, NullEnv, RandomSched, Replay, Scheduler};
use wfa::kernel::value::{Pid, Value};
use wfa::modelcheck::explorer::Limits;
use wfa::modelcheck::lemma11::{refute_strong_2_renaming, BoxedAuto, ConsensusViaRenaming};
use wfa::obs::json::Json;
use wfa::obs::metrics::{MetricsHandle, Snapshot};
use wfa::obs::span::timeline;
use wfa::gossip::backend::GossipBackend;
use wfa::gossip::config::GossipConfig;
use wfa::net::abd::AbdBackend;
use wfa::net::config::NetConfig;
use wfa::tasks::agreement::SetAgreement;
use wfa::tasks::renaming::Renaming;
use wfa::tasks::task::Task;

/// Builds the register backend selected by `--backend`: `None` for the
/// in-process shared memory (`shm`, the default), the ABD emulation over
/// `nodes` simulated replicas (`net`) — optionally batching up to
/// `batch_max` same-pid ops per quorum round (`--batch-max`, default 1 =
/// the e14-pinned classic path) and splitting the register space across
/// `shards` independent replica groups of `nodes` replicas each
/// (`--shards`, default 1) — or the delta-CRDT anti-entropy substrate over
/// `nodes` replicas (`gossip`), with an exchange round every
/// `gossip_interval` ops (`--gossip-interval`, default 1) and the
/// non-monotone guard disarmed by `gossip_unsafe` (`--gossip-unsafe`).
/// Backend seeds derive from the run seed so `--seed` fully determines the
/// network too.
fn select_backend(
    backend: &str,
    nodes: usize,
    seed: u64,
    batch_max: u64,
    shards: usize,
    gossip_interval: u64,
    gossip_unsafe: bool,
) -> Result<Option<Box<dyn wfa::kernel::backend::MemoryBackend>>, String> {
    match backend {
        "shm" => Ok(None),
        "net" => {
            let mut cfg = NetConfig::new(nodes, seed ^ 0x7e7);
            cfg.batch_max = batch_max.max(1);
            Ok(Some(if shards > 1 {
                Box::new(wfa::net::abd::sharded_backend(
                    &cfg,
                    &wfa::net::config::ShardMap::new(shards, nodes),
                ))
            } else {
                Box::new(AbdBackend::new(cfg))
            }))
        }
        "gossip" => {
            let mut cfg = GossipConfig::new(nodes, seed ^ 0x7e7).with_interval(gossip_interval);
            cfg.allow_nonmonotone = gossip_unsafe;
            Ok(Some(Box::new(GossipBackend::new(cfg))))
        }
        other => Err(format!("unknown backend `{other}` (try: shm, net, gossip)")),
    }
}

/// Parsed `--key value` arguments with typed accessors.
struct Args(HashMap<String, String>);

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut map = HashMap::new();
        let mut it = raw.iter().peekable();
        while let Some(k) = it.next() {
            let Some(key) = k.strip_prefix("--") else {
                return Err(format!("expected --key, got `{k}`"));
            };
            // A key followed by another `--key` (or by nothing) is a bare
            // boolean flag, e.g. `--json`.
            let v = match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    it.next().expect("peeked value exists").clone()
                }
                _ => "true".to_string(),
            };
            map.insert(key.to_string(), v);
        }
        Ok(Args(map))
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: `{v}`")),
        }
    }
}

fn cmd_ksa(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 4)?;
    let k: usize = args.get("k", 2)?;
    let stab: u64 = args.get("stab", 200)?;
    let seed: u64 = args.get("seed", 7)?;
    let crashes: usize = args.get("crashes", 1)?;
    let as_json: bool = args.get("json", false)?;
    let backend = args.get("backend", "shm".to_string())?;
    let net_nodes: usize = args.get("net-nodes", n)?;
    let batch_max: u64 = args.get("batch-max", 1)?;
    let shards: usize = args.get("shards", 1)?;
    let gossip_interval: u64 = args.get("gossip-interval", 1)?;
    let gossip_unsafe: bool = args.get("gossip-unsafe", false)?;
    if k == 0 || k > n {
        return Err("need 1 ≤ k ≤ n".into());
    }
    let pattern = wfa::fd::environment::Environment::up_to(n, crashes.min(n - 1))
        .sample(seed, stab.max(1));
    if !as_json {
        println!("pattern  : {pattern}");
    }
    let fd = FdGen::vector_omega_k(pattern, k, stab, seed);
    if !as_json {
        println!("detector : {} (stab {stab})", fd.name());
    }
    let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
    let c: Vec<Box<dyn DynProcess>> = inputs
        .iter()
        .enumerate()
        .map(|(i, v)| Box::new(SetAgreementC::new(i, k as u32, v.clone())) as Box<dyn DynProcess>)
        .collect();
    let s: Vec<Box<dyn DynProcess>> = (0..n)
        .map(|q| {
            Box::new(SetAgreementS::new(q as u32, n as u32, n, k as u32)) as Box<dyn DynProcess>
        })
        .collect();
    let obs = MetricsHandle::counters();
    let mut run = EfdRun::new(c, s, fd).with_metrics(obs.clone());
    if let Some(b) =
        select_backend(&backend, net_nodes, seed, batch_max, shards, gossip_interval, gossip_unsafe)?
    {
        run = run.with_backend(b);
    }
    let mut sched = run.fair_sched(seed ^ 0xc11);
    let slots = run.run_until_decided(&mut sched, 5_000_000);
    let task = SetAgreement::new(n, k);
    let report = RunReport::evaluate(
        &run,
        &task,
        &inputs,
        wfa::kernel::sched::StopReason::ScheduleEnded,
    );
    if as_json {
        let obj = Json::Obj(vec![
            ("command".into(), Json::Str("ksa".into())),
            ("backend".into(), Json::Str(backend.clone())),
            ("n".into(), Json::Num(n as u64)),
            ("k".into(), Json::Num(k as u64)),
            ("seed".into(), Json::Num(seed)),
            ("decided".into(), Json::Bool(slots.is_some())),
            ("slots".into(), Json::Num(slots.unwrap_or(0))),
            (
                "outputs".into(),
                Json::Arr(report.output.iter().map(|v| Json::Str(v.to_string())).collect()),
            ),
            (
                "verdict".into(),
                Json::Str(match &report.verdict {
                    Ok(()) => "ok".into(),
                    Err(e) => e.to_string(),
                }),
            ),
            ("degradations".into(), Json::Num(run.executor.degradations().len() as u64)),
            (
                // The closing half of the degradation lifecycle: one row
                // per resolved spell, with the ticks that bound it (MTTR =
                // resolve - degrade). Absent in legacy consumers' inputs —
                // parsers must treat a missing array as empty.
                "recoveries".into(),
                Json::Arr(
                    run.executor
                        .resolutions()
                        .iter()
                        .map(|r| {
                            Json::Obj(vec![
                                ("class".into(), Json::Str(r.kind.name().into())),
                                ("shard".into(), Json::Num(r.shard as u64)),
                                ("degrade_tick".into(), Json::Num(r.degrade_tick)),
                                ("resolve_tick".into(), Json::Num(r.resolve_tick)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("metrics".into(), obs.snapshot().expect("metrics enabled").to_json()),
        ]);
        println!("{obj}");
    } else {
        for (i, (inp, out)) in report.input.iter().zip(&report.output).enumerate() {
            println!("C{i}: input={inp} output={out} ({} own steps)", report.c_steps[i]);
        }
        for d in run.executor.degradations() {
            println!("degraded : {d}");
        }
        for r in run.executor.resolutions() {
            println!("resolved : {r}");
        }
    }
    match (&report.verdict, slots) {
        (Ok(()), Some(slots)) => {
            if !as_json {
                println!("ok: all decided in {slots} slots, Δ satisfied");
            }
            Ok(())
        }
        (Err(e), _) => Err(format!("task violated: {e}")),
        (Ok(()), None) => Err("budget exhausted before all decisions".into()),
    }
}

fn cmd_rename(args: &Args) -> Result<(), String> {
    let j: usize = args.get("j", 3)?;
    let seeds: u64 = args.get("seeds", 60)?;
    let as_json: bool = args.get("json", false)?;
    let backend = args.get("backend", "shm".to_string())?;
    let net_nodes: usize = args.get("net-nodes", j)?;
    let batch_max: u64 = args.get("batch-max", 1)?;
    let shards: usize = args.get("shards", 1)?;
    let gossip_interval: u64 = args.get("gossip-interval", 1)?;
    let gossip_unsafe: bool = args.get("gossip-unsafe", false)?;
    let m = j + 1;
    let obs = MetricsHandle::counters();
    let mut rows: Vec<(usize, usize, i64)> = Vec::new();
    for k in 1..=j {
        let mut max_name = 0i64;
        for seed in 0..seeds {
            let mut ex = Executor::new();
            ex.set_metrics(obs.clone());
            if let Some(b) = select_backend(
                &backend,
                net_nodes,
                seed,
                batch_max,
                shards,
                gossip_interval,
                gossip_unsafe,
            )? {
                ex.set_backend(b);
            }
            let pids: Vec<Pid> =
                (0..j).map(|i| ex.add_process(Box::new(RenamingFig4::new(i, m)))).collect();
            let mut sched = KConcurrent::with_seed(pids.clone(), [], k, seed);
            run_schedule(&mut ex, &mut sched, &mut NullEnv, 5_000_000);
            for p in &pids {
                max_name =
                    max_name.max(ex.status(*p).decision().and_then(Value::as_int).unwrap_or(0));
            }
        }
        rows.push((k, j + k - 1, max_name));
    }
    if as_json {
        let obj = Json::Obj(vec![
            ("command".into(), Json::Str("rename".into())),
            ("backend".into(), Json::Str(backend.clone())),
            ("j".into(), Json::Num(j as u64)),
            ("seeds".into(), Json::Num(seeds)),
            (
                "rows".into(),
                Json::Arr(
                    rows.iter()
                        .map(|(k, bound, observed)| {
                            Json::Obj(vec![
                                ("k".into(), Json::Num(*k as u64)),
                                ("bound".into(), Json::Num(*bound as u64)),
                                ("observed".into(), Json::Num((*observed).max(0) as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("metrics".into(), obs.snapshot().expect("metrics enabled").to_json()),
        ]);
        println!("{obj}");
    } else {
        println!("(j = {j}) max observed name over {seeds} seeded k-concurrent ensembles:");
        println!("{:>4} {:>8} {:>8}", "k", "bound", "observed");
        for (k, bound, observed) in &rows {
            println!("{k:>4} {bound:>8} {observed:>8}");
        }
    }
    Ok(())
}

fn cmd_throughput(args: &Args) -> Result<(), String> {
    let ops: u64 = args.get("ops", 2_000)?;
    let seed: u64 = args.get("seed", 1)?;
    if ops == 0 {
        return Err("need --ops ≥ 1".into());
    }
    // The report carries only deterministic counts (ops, messages, batch
    // rounds, per-shard traffic) — a pure function of (--ops, --seed), so
    // CI diffs it byte-for-byte across WFA_THREADS values. Wall-clock
    // curves live in BENCH_net_throughput.json (emit_bench_net_throughput).
    let report = wfa_bench::throughput::b10_report(ops, seed);
    match args.0.get("out") {
        Some(path) => {
            std::fs::write(path, &report).map_err(|e| format!("writing {path}: {e}"))?;
            println!("B10 report ({} bytes) written to {path}", report.len());
        }
        None => print!("{report}"),
    }
    Ok(())
}

fn cmd_hierarchy(args: &Args) -> Result<(), String> {
    let n: usize = args.get("n", 4)?;
    let runs: u32 = args.get("runs", 400)?;
    println!("Theorem-10 classification over n = {n} ({runs} runs per cell)");
    for k_task in 1..=n {
        let task: Arc<dyn Task> = Arc::new(SetAgreement::new(n, k_task));
        let t2 = task.clone();
        let algo = move |i: usize, input: &Value| {
            Box::new(OneConcurrentSolver::new(i, t2.clone(), input.clone())) as Box<dyn DynProcess>
        };
        let (level, rows) = concurrency_profile(&task, &algo, n, runs, 200_000, 11);
        let cells: String = rows
            .iter()
            .map(|r| match r.outcome {
                ProbeOutcome::Satisfied { .. } => " ✓",
                ProbeOutcome::Violated { .. } => " ✗",
                ProbeOutcome::Stuck { .. } => " ∅",
            })
            .collect();
        println!("{:<22}{}  → class {:?}", task.name(), cells, level);
    }
    let j = (n - 1).max(2);
    let task: Arc<dyn Task> = Arc::new(Renaming::strong(n, j));
    let algo = move |i: usize, _input: &Value| {
        Box::new(RenamingFig4::new(i, 4)) as Box<dyn DynProcess>
    };
    let (level, _) = concurrency_profile(&task, &algo, n.min(3), runs, 300_000, 13);
    println!("{:<22}  → class {:?}", task.name(), level);
    Ok(())
}

fn cmd_refute(_args: &Args) -> Result<(), String> {
    let cand = |i: usize| Box::new(RenamingFig4::new(i, 4)) as Box<dyn DynProcess>;
    let r = refute_strong_2_renaming(&cand, &[0, 1, 2], Limits::default());
    println!("colliding solo slots: p{} and p{}", r.colliding.0, r.colliding.1);
    println!("states explored     : {}", r.report.states);
    match (&r.report.violation, &r.report.undecided_cycle) {
        (Some((reason, sched)), _) => {
            println!("counterexample      : {reason} (schedule length {})", sched.len());
            // Replay the violating schedule under the observability layer
            // and render it as a space-time timeline.
            let (a, b) = r.colliding;
            let obs = MetricsHandle::with_events(4096);
            let mut ex = Executor::new();
            ex.set_metrics(obs.clone());
            ex.add_process(Box::new(ConsensusViaRenaming::new(
                a,
                b,
                Value::Int(0),
                BoxedAuto(cand(a)),
            )));
            ex.add_process(Box::new(ConsensusViaRenaming::new(
                b,
                a,
                Value::Int(1),
                BoxedAuto(cand(b)),
            )));
            let mut replay = Replay::new(sched.clone());
            run_schedule(&mut ex, &mut replay, &mut NullEnv, 10_000);
            println!("\nviolating schedule (r = read, w = write, s = snapshot, D = decide):");
            println!("{}", timeline(&obs.events(), 2));
        }
        (None, Some(sched)) => {
            println!("counterexample      : forever-undecided cycle at depth {}", sched.len())
        }
        _ => return Err("no counterexample found (Lemma 11 violated?!)".into()),
    }
    Ok(())
}

fn cmd_extract(args: &Args) -> Result<(), String> {
    let slots: u64 = args.get("slots", 600_000)?;
    let stab: u64 = args.get("stab", 300)?;
    let seed: u64 = args.get("seed", 42)?;
    let n = 3;
    fn c_part(i: usize, input: &Value) -> Box<dyn DynProcess> {
        Box::new(SetAgreementC::new(i, 1, input.clone()))
    }
    fn s_part(q: usize) -> Box<dyn DynProcess> {
        Box::new(SetAgreementS::new(q as u32, 3, 3, 1))
    }
    let builders = AsimBuilders { c_part, s_part };
    let inputs: Vec<Vec<Value>> = vec![(0..n as i64).map(Value::Int).collect()];
    let pattern = FailurePattern::failure_free(n);
    let mut fd = FdGen::vector_omega_k(pattern.clone(), 1, stab, seed);
    let mut ex = Executor::new();
    for q in 0..n {
        ex.add_process(Box::new(ReductionS::new(q, n, 1, builders, inputs.clone())));
    }
    let mut sched = RandomSched::over_all(&ex, seed ^ 0xe4);
    let mut history: Vec<HistoryEntry> = Vec::new();
    for step in 0..slots {
        let Some(pid) = sched.next(&ex) else { break };
        let now = ex.clock();
        let fdv = fd.output(pid.0, now);
        ex.step(pid, Some(&fdv));
        if step % 16 == 0 {
            let v = ex.memory().peek(emulated_key(pid.0 as u32));
            if !v.is_unit() {
                history.push(HistoryEntry { q: pid.0, t: now, val: v });
            }
        }
    }
    println!("samples recorded: {}", history.len());
    match check_anti_omega_k(&pattern, &history, 1, 5_000) {
        Some(w) => {
            println!("¬Ω1 extracted: correct S{} excluded from τ = {}", w.who, w.tau);
            Ok(())
        }
        None => Err("extraction did not stabilize within the budget".into()),
    }
}

fn cmd_faults(argv: &[String]) -> Result<(), String> {
    use wfa::faults::prelude::*;

    const FAULTS_USAGE: &str = "USAGE: wfa-cli faults <sweep|soak|replay|list>\n\
         \n\
         faults sweep  --scenario NAME [--depth D --seeds S --seed B --threads T\n\
         \t\t--no-prune --plan-budget N --out FILE]\n\
         \n\
         \tEnumerates every fault plan of ≤ D components (bounded DFS over\n\
         \tcrash points, starvation stops, FD sample corruption, advice\n\
         \tdelays and — for net-backed scenarios — majority-safe replica\n\
         \tpartitions, drop windows, corruption windows, heals and\n\
         \tcrash/recover pairs inside the recovery horizon), evaluates S\n\
         \tseeds per plan with panic isolation, shrinks the violations and\n\
         \tprints them. Majority-safe plans that still lose a quorum\n\
         \tsurface as typed `quorum-lost` violations. Plans dominated by a\n\
         \tsurviving superset (extras all pure message loss) are pruned —\n\
         \t--no-prune force-runs every plan; --plan-budget N caps the plans\n\
         \tevaluated (deterministic truncation). --out writes the canonical\n\
         \treport JSON (byte-identical for every --threads value). Exits\n\
         \tnon-zero if violations were found.\n\
         \n\
         faults soak   [--backend shm|net|gossip --ticks N --seed S\n\
         \t\t--intensity calm|storm|mixed --checkpoint-every N --nodes N\n\
         \t\t--inject-bug --shrink --json --out FILE]\n\
         \n\
         \tOne deterministic long-horizon chaos soak: a seeded stream of\n\
         \tserialized fault windows (crash/recover, partitions, loss and\n\
         \tcorruption windows, read-only freeze spells; storm phases add\n\
         \theal-bounded majority partitions) drives the chosen backend to\n\
         \tthe tick horizon while online oracles check model equality,\n\
         \tquorum safety, gossip convergence-on-quiescence, causal replay\n\
         \tand the degradation lifecycle. On violation, a flight recorder\n\
         \tof periodic checkpoints certifies the replay resumes from the\n\
         \tlast checkpoint rather than tick 0; --shrink then drops fault\n\
         \twindows while the violation keeps reproducing. The report\n\
         \tcarries a `recoveries` array and an MTTR table per degradation\n\
         \tclass, and is byte-identical for any WFA_THREADS value. Exits\n\
         \tnon-zero when an oracle fired.\n\
         \n\
         faults replay <artifact.json>\n\
         \n\
         \tRe-executes a serialized violation or soak artifact from\n\
         \tscratch and reports whether it still reproduces. For soak\n\
         \tartifacts the fresh run is diffed field by field against the\n\
         \tartifact (verdict, violation op, op count, final tick,\n\
         \trecovery count); any difference prints as a structured diff.\n\
         \tExits non-zero if the artifact does not reproduce.\n\
         \n\
         faults list\n\
         \n\
         \tNames of the canonical scenarios.";

    match argv.first().map(String::as_str) {
        Some("sweep") => {
            let args = Args::parse(&argv[1..])?;
            let mut config = SweepConfig::new(&args.get("scenario", "adopt-commit".to_string())?);
            config.depth = args.get("depth", 2)?;
            config.seeds_per_plan = args.get("seeds", 2)?;
            config.base_seed = args.get("seed", 1)?;
            let threads: usize = args.get("threads", 0)?;
            if threads > 0 {
                config.threads = Some(threads);
            }
            config.prune = !args.get("no-prune", false)?;
            config.plan_budget = args.get("plan-budget", 0)?;
            if Scenario::by_name(&config.scenario).is_none() {
                return Err(format!(
                    "unknown scenario `{}` (try: {})",
                    config.scenario,
                    Scenario::catalog().join(", ")
                ));
            }
            let report = sweep(&config);
            println!(
                "[{}] {} plans ({} pruned, {} run), {} runs ({} worker threads): {} violation(s)",
                report.scenario,
                report.plans,
                report.plans_pruned,
                report.plans_run,
                report.runs,
                config.resolved_threads(),
                report.violations.len()
            );
            for v in &report.violations {
                println!("  {v}");
            }
            if let Some(path) = args.0.get("out") {
                std::fs::write(path, report.to_json().to_string())
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("report written to {path}");
            }
            if report.violations.is_empty() {
                Ok(())
            } else {
                Err(format!("{} violation(s) found", report.violations.len()))
            }
        }
        Some("soak") => {
            use wfa::faults::chaos::{self, Intensity, SoakBackend, SoakConfig};
            let args = Args::parse(&argv[1..])?;
            let backend_name = args.get("backend", "shm".to_string())?;
            let backend = SoakBackend::parse(&backend_name).ok_or_else(|| {
                format!("unknown backend `{backend_name}` (try: shm, net, gossip)")
            })?;
            let intensity_name = args.get("intensity", "mixed".to_string())?;
            let intensity = Intensity::parse(&intensity_name).ok_or_else(|| {
                format!("unknown intensity `{intensity_name}` (try: calm, storm, mixed)")
            })?;
            let mut cfg = SoakConfig::new(backend);
            cfg.intensity = intensity;
            cfg.ticks = args.get("ticks", cfg.ticks)?;
            cfg.seed = args.get("seed", cfg.seed)?;
            cfg.checkpoint_every = args.get("checkpoint-every", cfg.checkpoint_every)?;
            cfg.nodes = args.get("nodes", cfg.nodes)?;
            cfg.inject_bug = args.get("inject-bug", false)?;
            let mut report = chaos::soak(&cfg);
            if args.get("shrink", false)? && report.violation.is_some() {
                let (shrunk, replays) = chaos::shrink_soak(&report);
                println!(
                    "shrink   : {} fault(s) -> {} over {replays} re-soak(s)",
                    report.faults.len(),
                    shrunk.faults.len()
                );
                report = shrunk;
            }
            if args.get("json", false)? {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
            if let Some(path) = args.0.get("out") {
                std::fs::write(path, report.to_json().to_string())
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("artifact written to {path}");
            }
            match &report.violation {
                None => Ok(()),
                Some(v) => Err(format!("soak violation: {} at op {}", v.kind, v.op)),
            }
        }
        Some("replay") => {
            let Some(path) = argv.get(1) else {
                return Err(format!("missing artifact path\n\n{FAULTS_USAGE}"));
            };
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let json = Json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
            // A soak artifact replays through the chaos engine: re-run the
            // stored timeline and diff the verdicts structurally.
            if wfa::faults::chaos::is_soak_artifact(&json) {
                let (fresh, diff) = wfa::faults::chaos::replay_soak(&json)?;
                print!("{}", fresh.render());
                return if diff.is_empty() {
                    println!("reproduced: soak artifact verdict matches on replay");
                    Ok(())
                } else {
                    println!("NOT reproduced: {} field(s) differ", diff.len());
                    println!("{:<14} {:>16} {:>16}", "field", "artifact", "replay");
                    for (field, old, new) in &diff {
                        println!("{field:<14} {old:>16} {new:>16}");
                    }
                    Err(format!("soak artifact did not reproduce ({} field(s) differ)", diff.len()))
                };
            }
            // Accept both a bare violation and a full sweep report.
            let violations: Vec<Violation> = match json.get("violations") {
                Some(arr) => arr
                    .arr()
                    .ok_or_else(|| "malformed report: violations is not an array".to_string())?
                    .iter()
                    .map(Violation::from_json)
                    .collect::<Result<_, _>>()?,
                None => vec![Violation::from_json(&json)?],
            };
            if violations.is_empty() {
                // An empty artifact reproduces nothing — that is a failed
                // replay, not a success (scripts gating on the exit code
                // must not read "no violations present" as "reproduced").
                return Err("artifact holds no violations — nothing to replay".into());
            }
            let mut failed = 0;
            for v in &violations {
                let verdict = replay(v)?;
                let mark = if verdict.reproduced { "reproduced" } else { "NOT reproduced" };
                println!("{mark}: {v}\n  {}", verdict.detail);
                if !verdict.reproduced {
                    failed += 1;
                }
            }
            if failed == 0 {
                Ok(())
            } else {
                Err(format!("{failed} of {} violation(s) did not reproduce", violations.len()))
            }
        }
        Some("list") => {
            for name in Scenario::catalog() {
                let sc = Scenario::by_name(name).expect("catalog names resolve");
                let backend = if sc.net_gossip {
                    format!("gossip({})", sc.net_nodes)
                } else if sc.net_nodes > 0 {
                    let order = if sc.net_fifo { "" } else { ",reorder" };
                    format!("net({}{order})", sc.net_nodes)
                } else {
                    "shm".to_string()
                };
                println!(
                    "{name:<16} n={} budget={} backend={backend} ({})",
                    sc.n,
                    sc.budget,
                    sc.task.name()
                );
            }
            Ok(())
        }
        Some("help") | None => {
            println!("{FAULTS_USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown faults subcommand `{other}`\n\n{FAULTS_USAGE}")),
    }
}

/// Runs one of the fixed-seed observability sources and returns its
/// canonical snapshot plus the recorded event stream (empty for sources
/// that only count).
fn obs_source(
    name: &str,
    seed: u64,
    threads: usize,
) -> Result<(Snapshot, Vec<wfa::obs::span::ObsEvent>), String> {
    use wfa::core::harness::Inert;
    use wfa::core::sim::{KcsSimC, KcsSimS};
    use wfa::core::solver::RenamingBuilder;
    use wfa::modelcheck::explorer::Explorer;

    match name {
        // The Figure-2 simulation (Theorem 14 engine) at a small budget:
        // n = 3 simulators drive k = 2 renaming codes under →Ω2.
        "figure2" => {
            let (n, k) = (3usize, 2usize);
            let builder = RenamingBuilder { m: 4 };
            let inputs: Vec<Value> = (0..n as i64).map(|i| Value::Int(1 + i)).collect();
            let c: Vec<Box<dyn DynProcess>> = inputs
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    Box::new(KcsSimC::new(i, n, n, k, k, v.clone(), builder))
                        as Box<dyn DynProcess>
                })
                .collect();
            let s: Vec<Box<dyn DynProcess>> = (0..n)
                .map(|q| Box::new(KcsSimS::new(q, n, n, k, k, builder)) as Box<dyn DynProcess>)
                .collect();
            let _ = Inert; // non-participant automaton, unused at ℓ = n
            let fd = FdGen::vector_omega_k(FailurePattern::failure_free(n), k, 150, seed);
            let obs = MetricsHandle::with_events(4096);
            let mut run = EfdRun::new(c, s, fd).with_metrics(obs.clone());
            let mut sched = run.fair_sched(seed ^ 0x14);
            run.run(&mut sched, 20_000);
            Ok((obs.snapshot().expect("metrics enabled"), obs.events()))
        }
        // A small fault sweep; the report's merged per-job snapshot.
        "sweep" => {
            use wfa::faults::prelude::{sweep, SweepConfig};
            let mut config = SweepConfig::new("fragile-commit");
            config.depth = 1;
            config.seeds_per_plan = 2;
            config.base_seed = seed;
            config.shrink = false;
            if threads > 0 {
                config.threads = Some(threads);
            }
            Ok((sweep(&config).metrics, Vec::new()))
        }
        // An exhaustive interleaving exploration of two renaming automata.
        "explore" => {
            let mut ex = Executor::new();
            let pids: Vec<Pid> =
                (0..2).map(|i| ex.add_process(Box::new(RenamingFig4::new(i, 4)))).collect();
            let obs = MetricsHandle::counters();
            let check = |_: &Executor| None;
            Explorer::new(pids, &check, Limits::default())
                .threads(threads)
                .with_metrics(obs.clone())
                .run(&ex);
            Ok((obs.snapshot().expect("metrics enabled"), Vec::new()))
        }
        // The default `ksa` run over the ABD quorum-replicated backend:
        // message/quorum counters, channel spans, and step events, all on
        // a single deterministic schedule (thread-count invariant by
        // construction — the CI net-determinism job diffs its exports).
        "net" => {
            let (n, k, stab) = (4usize, 2usize, 200u64);
            let pattern = wfa::fd::environment::Environment::up_to(n, 1).sample(seed, stab);
            let fd = FdGen::vector_omega_k(pattern, k, stab, seed);
            let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
            let c: Vec<Box<dyn DynProcess>> = inputs
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    Box::new(SetAgreementC::new(i, k as u32, v.clone())) as Box<dyn DynProcess>
                })
                .collect();
            let s: Vec<Box<dyn DynProcess>> = (0..n)
                .map(|q| {
                    Box::new(SetAgreementS::new(q as u32, n as u32, n, k as u32))
                        as Box<dyn DynProcess>
                })
                .collect();
            let obs = MetricsHandle::with_events(4096);
            let mut run = EfdRun::new(c, s, fd)
                .with_metrics(obs.clone())
                .with_backend(Box::new(AbdBackend::new(NetConfig::new(n, seed ^ 0x7e7))));
            let mut sched = run.fair_sched(seed ^ 0xc11);
            run.run_until_decided(&mut sched, 5_000_000);
            Ok((obs.snapshot().expect("metrics enabled"), obs.events()))
        }
        // The same ksa run over the delta-CRDT gossip backend: round and
        // delta counters, anti-entropy spans, zero messages on the op path.
        "gossip" => {
            let (n, k, stab) = (4usize, 2usize, 200u64);
            let pattern = wfa::fd::environment::Environment::up_to(n, 1).sample(seed, stab);
            let fd = FdGen::vector_omega_k(pattern, k, stab, seed);
            let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
            let c: Vec<Box<dyn DynProcess>> = inputs
                .iter()
                .enumerate()
                .map(|(i, v)| {
                    Box::new(SetAgreementC::new(i, k as u32, v.clone())) as Box<dyn DynProcess>
                })
                .collect();
            let s: Vec<Box<dyn DynProcess>> = (0..n)
                .map(|q| {
                    Box::new(SetAgreementS::new(q as u32, n as u32, n, k as u32))
                        as Box<dyn DynProcess>
                })
                .collect();
            let obs = MetricsHandle::with_events(4096);
            let mut run = EfdRun::new(c, s, fd)
                .with_metrics(obs.clone())
                .with_backend(Box::new(GossipBackend::new(GossipConfig::new(n, seed ^ 0x7e7))));
            let mut sched = run.fair_sched(seed ^ 0xc11);
            run.run_until_decided(&mut sched, 5_000_000);
            Ok((obs.snapshot().expect("metrics enabled"), obs.events()))
        }
        other => {
            Err(format!("unknown source `{other}` (try: figure2, sweep, explore, net, gossip)"))
        }
    }
}

fn cmd_obs(argv: &[String]) -> Result<(), String> {
    use wfa::obs::export::{to_chrome, to_jsonl};

    const OBS_USAGE: &str = "USAGE: wfa-cli obs <summary|export|diff>\n\
         \n\
         obs summary [--source figure2|sweep|explore|net --seed S --threads T]\n\
         \n\
         \tRuns the fixed-seed source and prints its canonical counter and\n\
         \thistogram snapshot. The snapshot only carries thread-count\n\
         \tinvariant metrics, so it is identical for every --threads value.\n\
         \n\
         obs export --format jsonl|chrome [--source NAME --seed S --threads T --out FILE]\n\
         \n\
         \tExports the source's canonical snapshot and stable-keyed event\n\
         \tstream: `jsonl` (snapshot first, then one event per line) or\n\
         \t`chrome` (chrome://tracing / Perfetto trace_event JSON).\n\
         \tWrites to stdout unless --out is given.\n\
         \n\
         obs diff A B\n\
         \n\
         \tDiffs two snapshot files (plain JSON or JSONL exports; the first\n\
         \tline is read). Exits non-zero when any counter or histogram\n\
         \tbucket differs.";

    match argv.first().map(String::as_str) {
        Some("summary") => {
            let args = Args::parse(&argv[1..])?;
            let source = args.get("source", "figure2".to_string())?;
            let seed: u64 = args.get("seed", 7)?;
            let threads: usize = args.get("threads", 0)?;
            let (snap, events) = obs_source(&source, seed, threads)?;
            println!("[{source}] canonical metrics snapshot (seed {seed}):");
            for (name, v) in &snap.counters {
                if *v > 0 {
                    println!("  {name:<24} {v}");
                }
            }
            for (name, buckets) in &snap.hists {
                if !buckets.is_empty() {
                    let total: u64 = buckets.iter().map(|(_, c)| c).sum();
                    println!("  {name:<24} {total} obs over {} log2 buckets", buckets.len());
                }
            }
            if !events.is_empty() {
                println!("  {:<24} {}", "events", events.len());
            }
            Ok(())
        }
        Some("export") => {
            let args = Args::parse(&argv[1..])?;
            let format = args.get("format", "jsonl".to_string())?;
            let source = args.get("source", "figure2".to_string())?;
            let seed: u64 = args.get("seed", 7)?;
            let threads: usize = args.get("threads", 0)?;
            let (snap, events) = obs_source(&source, seed, threads)?;
            let text = match format.as_str() {
                "jsonl" => to_jsonl(&snap, &events),
                "chrome" => to_chrome(&events),
                other => return Err(format!("unknown format `{other}` (try: jsonl, chrome)")),
            };
            match args.0.get("out") {
                Some(path) => {
                    std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
                    println!("{format} export ({} bytes) written to {path}", text.len());
                }
                None => print!("{text}"),
            }
            Ok(())
        }
        Some("diff") => {
            let (Some(a), Some(b)) = (argv.get(1), argv.get(2)) else {
                return Err(format!("obs diff needs two file operands\n\n{OBS_USAGE}"));
            };
            let load = |path: &String| -> Result<Snapshot, String> {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
                let first = text.lines().next().unwrap_or("");
                let json =
                    Json::parse(first).map_err(|e| format!("parsing {path}: {e}"))?;
                // Accept a bare snapshot or any object embedding one under
                // `metrics` (the `ksa --json` / `rename --json` shape).
                let snap_json = json.get("metrics").unwrap_or(&json);
                Snapshot::from_json(snap_json).map_err(|e| format!("{path}: {e}"))
            };
            let (sa, sb) = (load(a)?, load(b)?);
            let diff = sa.diff(&sb);
            if diff.is_empty() {
                println!("snapshots agree on all {} counters", sa.counters.len());
                Ok(())
            } else {
                for (name, va, vb) in &diff {
                    println!("{name:<24} {va:>12} {vb:>12}");
                }
                Err(format!("{} counter(s) differ", diff.len()))
            }
        }
        Some("help") | None => {
            println!("{OBS_USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown obs subcommand `{other}`\n\n{OBS_USAGE}")),
    }
}

fn usage() -> &'static str {
    "wfa-cli — Wait-Freedom with Advice, runnable\n\
     \n\
     USAGE: wfa-cli <command> [--key value ...]\n\
     \n\
     COMMANDS\n\
       ksa        EFD k-set agreement   (--n --k --stab --seed --crashes --backend)\n\
       rename     renaming sweep        (--j --seeds --backend)\n\
       throughput B10 net-backend report (--ops --seed --out)\n\
       hierarchy  Theorem-10 table      (--n --runs)\n\
       refute     Lemma-11 pipeline\n\
       extract    Figure-1 extraction   (--slots --stab --seed)\n\
       faults     adversarial fault injection (sweep | soak | replay | list)\n\
       obs        observability         (summary | export | diff)\n\
       help       this text\n\
     \n\
     `ksa` and `rename` accept --json for a machine-readable report with\n\
     the canonical metrics snapshot attached, and --backend shm|net|gossip\n\
     to run over the in-process shared memory, the ABD-replicated network\n\
     emulation, or the delta-CRDT anti-entropy substrate (identical\n\
     decision values for identical seeds on fault-free runs). With\n\
     --backend net, --batch-max B coalesces up to B same-pid register ops\n\
     per quorum round and --shards S splits the register space across S\n\
     independent replica groups of --net-nodes replicas each; neither knob\n\
     changes decisions or schedules. With --backend gossip, ops are\n\
     replica-local (zero messages on the op path), --gossip-interval R runs\n\
     an anti-entropy round every R ops, and --gossip-unsafe disarms the\n\
     monotone-register guard. `throughput` prints the deterministic\n\
     B10 counter report for those knobs (byte-identical for any thread\n\
     count; wall-clock curves live in BENCH_net_throughput.json)."
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    // `faults` and `obs` have sub-commands and positional operands, so they
    // parse their own argument lists instead of going through the global
    // --key value parser.
    if cmd == "faults" || cmd == "obs" {
        let run = if cmd == "faults" { cmd_faults } else { cmd_obs };
        return match run(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match Args::parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "ksa" => cmd_ksa(&args),
        "rename" => cmd_rename(&args),
        "throughput" => cmd_throughput(&args),
        "hierarchy" => cmd_hierarchy(&args),
        "refute" => cmd_refute(&args),
        "extract" => cmd_extract(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
