//! Bench family B0 — kernel substrate costs.
//!
//! Register read/write throughput of the addressed shared memory, executor
//! step dispatch, and the ⚖ snapshot ablation from `DESIGN.md`: the granted
//! atomic-snapshot primitive vs. the register-level double-collect
//! construction that justifies it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wfa::kernel::memory::{RegKey, SharedMemory};
use wfa::kernel::process::{Process, Status, StepCtx};
use wfa::kernel::value::{Pid, Value};
use wfa::objects::driver::Driver;
use wfa::objects::snapshot::DoubleCollect;

fn bench_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/memory");
    g.bench_function("write", |b| {
        let mut mem = SharedMemory::new();
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 1024;
            mem.write(RegKey::new(1).at(0, i), Value::Int(i as i64));
        });
    });
    g.bench_function("read_hit", |b| {
        let mut mem = SharedMemory::new();
        for i in 0..1024u32 {
            mem.write(RegKey::new(1).at(0, i), Value::Int(i as i64));
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(mem.read(RegKey::new(1).at(0, i)));
        });
    });
    g.bench_function("read_bottom", |b| {
        let mut mem = SharedMemory::new();
        b.iter(|| black_box(mem.read(RegKey::new(2).at(0, 7))));
    });
    g.finish();
}

#[derive(Clone, Hash)]
struct Writer(u32);

impl Process for Writer {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Status {
        self.0 = self.0.wrapping_add(1);
        ctx.write(RegKey::new(3).at(0, self.0 % 64), Value::Int(self.0 as i64));
        Status::Running
    }
}

fn bench_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/executor");
    g.bench_function("step_dispatch", |b| {
        let mut ex = wfa::kernel::executor::Executor::new();
        let p = ex.add_process(Box::new(Writer(0)));
        b.iter(|| {
            ex.step(p, None);
        });
    });
    g.bench_function("fingerprint_64regs", |b| {
        let mut ex = wfa::kernel::executor::Executor::new();
        let p = ex.add_process(Box::new(Writer(0)));
        for _ in 0..64 {
            ex.step(p, None);
        }
        b.iter(|| black_box(ex.fingerprint()));
    });
    g.finish();
}

/// ⚖ snapshot ablation: primitive vs. double-collect over quiescent memory.
fn bench_snapshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel/snapshot");
    for regs in [4usize, 16, 64] {
        let keys: Vec<RegKey> = (0..regs as u32).map(|i| RegKey::new(4).at(0, i)).collect();
        g.bench_with_input(BenchmarkId::new("primitive", regs), &regs, |b, _| {
            let mut mem = SharedMemory::new();
            for (i, k) in keys.iter().enumerate() {
                mem.write(*k, Value::Int(i as i64));
            }
            b.iter(|| {
                let mut ctx = StepCtx::new(&mut mem, None, 0, Pid(0), 1);
                black_box(ctx.snapshot(&keys));
            });
        });
        g.bench_with_input(BenchmarkId::new("double_collect", regs), &regs, |b, _| {
            let mut mem = SharedMemory::new();
            for (i, k) in keys.iter().enumerate() {
                mem.write(*k, Value::Int(i as i64));
            }
            b.iter(|| {
                let mut d = DoubleCollect::new(keys.clone());
                loop {
                    let mut ctx = StepCtx::new(&mut mem, None, 0, Pid(0), 1);
                    if let wfa::objects::driver::Step::Done(v) = d.poll(&mut ctx) {
                        break black_box(v);
                    }
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_memory, bench_executor, bench_snapshot);
criterion_main!(benches);
