//! Bench families B2 + B7 — EFD k-set agreement (experiment E5's fast path)
//! and the advice-quality sweep.
//!
//! Predicted shapes: schedule slots to completion grow roughly linearly with
//! `n` (collect lengths) and *decrease* with `k` (more instances can decide
//! independently); total latency is dominated by the advice stabilization
//! time, while C-process own-step counts stay flat (wait-freedom).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wfa_bench::run_ksa;

fn bench_scaling_n(c: &mut Criterion) {
    let mut g = c.benchmark_group("ksa/slots_vs_n");
    g.sample_size(10);
    for n in [2usize, 4, 8, 12] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_ksa(n, 1.max(n / 4), 50, seed));
            });
        });
        let slots = run_ksa(n, 1.max(n / 4), 50, 1);
        eprintln!("ksa n={n}: {slots} schedule slots to all-decided");
    }
    g.finish();
}

fn bench_scaling_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("ksa/slots_vs_k");
    g.sample_size(10);
    let n = 8;
    for k in [1usize, 2, 4, 7] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_ksa(n, k, 50, seed));
            });
        });
        let slots = run_ksa(n, k, 50, 1);
        eprintln!("ksa k={k} (n={n}): {slots} slots");
    }
    g.finish();
}

/// B7: the advice-quality sweep — latency must track stabilization time.
fn bench_stabilization(c: &mut Criterion) {
    let mut g = c.benchmark_group("ksa/advice_stabilization");
    g.sample_size(10);
    for stab in [0u64, 200, 1_000, 5_000] {
        g.bench_with_input(BenchmarkId::from_parameter(stab), &stab, |b, &stab| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_ksa(4, 2, stab, seed));
            });
        });
        let slots = run_ksa(4, 2, stab, 1);
        eprintln!("ksa stab={stab}: {slots} slots (latency tracks the advice)");
    }
    g.finish();
}

criterion_group!(benches, bench_scaling_n, bench_scaling_k, bench_stabilization);
criterion_main!(benches);
