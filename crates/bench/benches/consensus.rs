//! Bench family B1 — leader-based consensus (Appendix C.1 substrate).
//!
//! Steps-to-decision of the ballot protocol: solo leader vs. party count
//! (collect length dominates: linear in parties), and the dueling-leaders
//! cost that the `→Ωk` advice exists to eliminate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wfa::algorithms::consensus::{BallotAgent, BallotOutcome};
use wfa::algorithms::round_consensus::RoundConsensus;
use wfa::kernel::memory::SharedMemory;
use wfa::kernel::process::StepCtx;
use wfa::kernel::value::{Pid, Value};
use wfa::objects::driver::{Driver, Step};

/// Drives one party's retry loop to decision on a fresh instance; returns
/// steps taken.
fn solo_decide(parties: u32, inst: u32) -> u64 {
    let mut mem = SharedMemory::new();
    let mut steps = 0u64;
    let mut round = 0;
    loop {
        let mut agent = BallotAgent::new(inst, parties, 0, round, Value::Int(7));
        loop {
            let mut ctx = StepCtx::new(&mut mem, None, steps, Pid(0), 1);
            steps += 1;
            match agent.poll(&mut ctx) {
                Step::Pending => {}
                Step::Done(BallotOutcome::Decided(_)) => return steps,
                Step::Done(BallotOutcome::Aborted { higher }) => {
                    round = BallotAgent::round_above(parties, 0, higher);
                    break;
                }
            }
        }
    }
}

fn bench_solo(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus/solo_leader");
    for parties in [2u32, 4, 8, 16, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(parties), &parties, |b, &p| {
            let mut inst = 0;
            b.iter(|| {
                inst += 1;
                black_box(solo_decide(p, inst));
            });
        });
        // Print the step count once per size (the shape the theory predicts:
        // linear in parties — two collect phases).
        let steps = solo_decide(parties, 999_000 + parties);
        eprintln!("consensus/solo_leader parties={parties}: {steps} steps to decide");
    }
    g.finish();
}

/// Two leaders racing under a pseudo-random interleaving until someone
/// decides. (Strict alternation livelocks forever — the classic dueling-
/// leaders adversary; randomness breaks the symmetry with probability 1,
/// which is exactly why liveness must come from the advice, not the ballot
/// protocol itself.)
fn duel_decide(inst: u32, mut rng_state: u64) -> u64 {
    let mut mem = SharedMemory::new();
    let mut steps = 0u64;
    let mut rounds = [0u32; 2];
    let mut agents: Vec<BallotAgent> = (0..2)
        .map(|p| BallotAgent::new(inst, 2, p, rounds[p as usize], Value::Int(p as i64)))
        .collect();
    loop {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        let p = (rng_state % 2) as usize;
        let mut ctx = StepCtx::new(&mut mem, None, steps, Pid(p), 1);
        steps += 1;
        match agents[p].poll(&mut ctx) {
            Step::Pending => {}
            Step::Done(BallotOutcome::Decided(_)) => return steps,
            Step::Done(BallotOutcome::Aborted { higher }) => {
                rounds[p] = BallotAgent::round_above(2, p as u32, higher);
                agents[p] = BallotAgent::new(inst, 2, p as u32, rounds[p], Value::Int(p as i64));
            }
        }
    }
}

fn bench_duel(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus/dueling_leaders");
    g.bench_function("random_interleaving", |b| {
        let mut inst = 1_000_000;
        b.iter(|| {
            inst += 1;
            black_box(duel_decide(inst, inst as u64 | 1));
        });
    });
    g.finish();
}

/// Solo decision cost of the adopt-commit-rounds substrate.
fn round_solo_decide(parties: u32, inst: u32) -> u64 {
    let mut mem = SharedMemory::new();
    let mut steps = 0u64;
    let mut rc = RoundConsensus::new(inst, parties, 0, Value::Int(7));
    rc.set_leader(0);
    loop {
        let mut ctx = StepCtx::new(&mut mem, None, steps, Pid(0), 1);
        steps += 1;
        if let Step::Done(_) = rc.poll(&mut ctx) {
            return steps;
        }
    }
}

/// ⚖ substrate ablation: Disk-Paxos ballots vs adopt-commit rounds.
fn bench_substrate_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus/substrate_ablation");
    for parties in [2u32, 8, 32] {
        g.bench_with_input(BenchmarkId::new("ballots", parties), &parties, |b, &p| {
            let mut inst = 2_000_000;
            b.iter(|| {
                inst += 1;
                black_box(solo_decide(p, inst));
            });
        });
        g.bench_with_input(BenchmarkId::new("ac_rounds", parties), &parties, |b, &p| {
            let mut inst = 0;
            b.iter(|| {
                inst += 1;
                black_box(round_solo_decide(p, inst));
            });
        });
        eprintln!(
            "substrate parties={parties}: ballots {} steps | ac-rounds {} steps",
            solo_decide(parties, 3_000_000 + parties),
            round_solo_decide(parties, 900_000 + parties)
        );
    }
    g.finish();
}

criterion_group!(benches, bench_solo, bench_duel, bench_substrate_ablation);
criterion_main!(benches);
