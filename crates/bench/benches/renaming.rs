//! Bench family B3 — renaming: advice vs. the wait-free baseline
//! (experiments E7/E8, Theorems 15–16).
//!
//! The same Figure-4 automaton serves as both contender and baseline: run
//! k-concurrently it uses names `≤ j+k−1`; run unrestricted (`k = j`) it is
//! the classic `(j, 2j−1)` wait-free algorithm. The bench sweeps `(j, k)`,
//! measuring steps-to-completion and the *observed maximum name* — the
//! namespace crossover is the paper's headline: advice (small `k`) beats the
//! baseline's `2j−1` exactly until `k = j`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wfa::kernel::executor::Executor;
use wfa::kernel::sched::{run_schedule, KConcurrent, NullEnv};
use wfa::kernel::value::{Pid, Value};
use wfa::algorithms::moir_anderson::MoirAnderson;
use wfa::algorithms::renaming::{RenamingFig3, RenamingFig4};

/// Runs `j` Figure-4 participants (of `m`) at concurrency `k`; returns
/// (schedule slots, max name).
fn run_fig4(m: usize, j: usize, k: usize, seed: u64) -> (u64, i64) {
    let mut ex = Executor::new();
    let pids: Vec<Pid> =
        (0..j).map(|i| ex.add_process(Box::new(RenamingFig4::new(i, m)))).collect();
    let mut sched = KConcurrent::with_seed(pids.clone(), [], k, seed);
    run_schedule(&mut ex, &mut sched, &mut NullEnv, 5_000_000);
    let max_name = pids
        .iter()
        .map(|p| ex.status(*p).decision().and_then(Value::as_int).expect("decided"))
        .max()
        .unwrap();
    (ex.clock(), max_name)
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("renaming/fig4");
    for j in [3usize, 5, 8] {
        let m = j + 1;
        for k in [1usize, 2, j] {
            let id = format!("j{j}_k{k}");
            g.bench_with_input(BenchmarkId::from_parameter(&id), &(j, k), |b, &(j, k)| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(run_fig4(m, j, k, seed));
                });
            });
            let max_over_seeds =
                (0..40).map(|s| run_fig4(m, j, k, s).1).max().unwrap();
            let label = if k == j { " (wait-free baseline)" } else { "" };
            eprintln!(
                "renaming j={j} k={k}{label}: bound {} | max observed name {max_over_seeds}",
                j + k - 1
            );
        }
    }
    g.finish();
}

/// E7: the Figure-3 gate (1-resilient strong-ish renaming).
fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("renaming/fig3_gate");
    g.sample_size(10);
    for j in [3usize, 4] {
        let m = j + 2;
        g.bench_with_input(BenchmarkId::from_parameter(j), &j, |b, &j| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut ex = Executor::new();
                let pids: Vec<Pid> = (0..j)
                    .map(|i| {
                        ex.add_process(Box::new(RenamingFig3::new(
                            i,
                            m,
                            j,
                            RenamingFig4::new(i, m),
                        )))
                    })
                    .collect();
                let mut sched =
                    wfa::kernel::sched::RandomSched::new(pids.clone(), seed);
                run_schedule(&mut ex, &mut sched, &mut NullEnv, 5_000_000);
                black_box(ex.clock())
            });
        });
    }
    g.finish();
}

/// Moir-Anderson splitter-grid baseline: steps and namespace vs Figure 4.
fn bench_moir_anderson(c: &mut Criterion) {
    let mut g = c.benchmark_group("renaming/baselines");
    for j in [3usize, 5, 8] {
        g.bench_with_input(BenchmarkId::new("moir_anderson", j), &j, |b, &j| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut ex = Executor::new();
                let pids: Vec<Pid> =
                    (0..j).map(|i| ex.add_process(Box::new(MoirAnderson::new(i, j)))).collect();
                let mut sched = wfa::kernel::sched::RandomSched::new(pids.clone(), seed);
                run_schedule(&mut ex, &mut sched, &mut NullEnv, 2_000_000);
                black_box(ex.clock())
            });
        });
        g.bench_with_input(BenchmarkId::new("fig4", j), &j, |b, &j| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_fig4(j + 1, j, j, seed));
            });
        });
        let mut ma_max = 0i64;
        for seed in 0..40u64 {
            let mut ex = Executor::new();
            let pids: Vec<Pid> =
                (0..j).map(|i| ex.add_process(Box::new(MoirAnderson::new(i, j)))).collect();
            let mut sched = wfa::kernel::sched::RandomSched::new(pids.clone(), seed);
            run_schedule(&mut ex, &mut sched, &mut NullEnv, 2_000_000);
            for p in &pids {
                ma_max = ma_max.max(ex.status(*p).decision().and_then(Value::as_int).unwrap());
            }
        }
        eprintln!(
            "baselines j={j}: Moir-Anderson bound {} (observed max {ma_max}) vs Figure-4 bound {}",
            MoirAnderson::namespace(j),
            2 * j - 1
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig4, bench_fig3, bench_moir_anderson);
criterion_main!(benches);
