//! Bench family B-E4 — the Figure-1 extraction.
//!
//! Measures how long (in real schedule slots) the corridor exploration takes
//! to *stabilize* its emulated `¬Ω1` output on excluding the detector's
//! stable leader — the extraction latency of Theorem 8 — as a function of
//! the detector's own stabilization time. Predicted shape: extraction
//! latency tracks detector stabilization plus a near-constant exploration
//! overhead (the branch enumeration up to the first never-deciding run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wfa::core::reduction::{emulated_key, AsimBuilders, ReductionS};
use wfa::fd::detectors::FdGen;
use wfa::fd::pattern::FailurePattern;
use wfa::kernel::executor::Executor;
use wfa::kernel::process::DynProcess;
use wfa::kernel::sched::{RandomSched, Scheduler};
use wfa::kernel::value::Value;
use wfa::algorithms::set_agreement::{SetAgreementC, SetAgreementS};

fn builders() -> AsimBuilders {
    fn c_part(i: usize, input: &Value) -> Box<dyn DynProcess> {
        Box::new(SetAgreementC::new(i, 1, input.clone()))
    }
    fn s_part(q: usize) -> Box<dyn DynProcess> {
        Box::new(SetAgreementS::new(q as u32, 3, 3, 1))
    }
    AsimBuilders { c_part, s_part }
}

/// Runs the extraction until every live process's emulated output has been
/// stable for `window` slots; returns the slot count at stabilization.
fn extraction_latency(stab: u64, seed: u64) -> u64 {
    let n = 3;
    let window = 30_000u64;
    let inputs: Vec<Vec<Value>> = vec![(0..n as i64).map(Value::Int).collect()];
    let pattern = FailurePattern::failure_free(n);
    let mut fd = FdGen::vector_omega_k(pattern, 1, stab, seed);
    let mut ex = Executor::new();
    for q in 0..n {
        ex.add_process(Box::new(ReductionS::new(q, n, 1, builders(), inputs.clone())));
    }
    let mut sched = RandomSched::over_all(&ex, seed ^ 0xe4);
    let mut last_vals: Vec<Value> = vec![Value::Unit; n];
    let mut stable_since = 0u64;
    for _ in 0..2_000_000u64 {
        let Some(pid) = sched.next(&ex) else { break };
        let now = ex.clock();
        let fdv = fd.output(pid.0, now);
        ex.step(pid, Some(&fdv));
        let v = ex.memory().peek(emulated_key(pid.0 as u32));
        if v != last_vals[pid.0] {
            last_vals[pid.0] = v;
            stable_since = now;
        }
        if now > stable_since + window && !last_vals.iter().any(Value::is_unit) {
            return stable_since;
        }
    }
    u64::MAX // did not stabilize within budget
}

fn bench_extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduction/extraction_latency");
    g.sample_size(10);
    for stab in [0u64, 500, 2_000] {
        g.bench_with_input(BenchmarkId::from_parameter(stab), &stab, |b, &stab| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(extraction_latency(stab, seed));
            });
        });
        let lat = extraction_latency(stab, 1);
        eprintln!("reduction stab={stab}: emulated ¬Ω1 stable by slot {lat}");
    }
    g.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
