//! Bench family B8 — model-checking costs (experiments E1/E6).
//!
//! State counts and wall time of the exhaustive explorations backing the
//! impossibility results: the Lemma-11 refutation pipeline and exhaustive
//! verification of the register objects at small sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wfa::kernel::executor::Executor;
use wfa::kernel::process::DynProcess;
use wfa::modelcheck::explorer::{explore_all, Limits};
use wfa::modelcheck::lemma11::refute_strong_2_renaming;
use wfa::algorithms::renaming::RenamingFig4;
use wfa::objects::adopt_commit::AdoptCommit;
use wfa::objects::driver::{Driver, Step};
use wfa::kernel::process::{Process, Status, StepCtx};
use wfa::kernel::value::Value;

fn bench_lemma11(c: &mut Criterion) {
    let mut g = c.benchmark_group("modelcheck/lemma11");
    g.sample_size(10);
    g.bench_function("fig4_refutation", |b| {
        let cand = |i: usize| Box::new(RenamingFig4::new(i, 4)) as Box<dyn DynProcess>;
        b.iter(|| {
            let r = refute_strong_2_renaming(&cand, &[0, 1, 2], Limits::default());
            assert!(r.refuted());
            black_box(r.report.states)
        });
    });
    let cand = |i: usize| Box::new(RenamingFig4::new(i, 4)) as Box<dyn DynProcess>;
    let r = refute_strong_2_renaming(&cand, &[0, 1, 2], Limits::default());
    eprintln!("lemma11/fig4: {} distinct states, exhaustive={}", r.report.states, !r.report.truncated);
    g.finish();
}

/// Adopt-commit wrapped as a deciding process (for exhaustive exploration).
#[derive(Clone, Hash)]
struct AcProc(AdoptCommit);

impl Process for AcProc {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Status {
        match self.0.poll(ctx) {
            Step::Pending => Status::Running,
            Step::Done(out) => Status::Decided(Value::tuple([
                Value::Bool(out.is_commit()),
                out.value().clone(),
            ])),
        }
    }
}

fn bench_adopt_commit_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("modelcheck/adopt_commit");
    g.sample_size(10);
    g.bench_function("two_parties_exhaustive", |b| {
        b.iter(|| {
            let mut ex = Executor::new();
            for p in 0..2 {
                ex.add_process(Box::new(AcProc(AdoptCommit::new(
                    1,
                    0,
                    2,
                    p,
                    Value::Int(p as i64),
                ))));
            }
            // Safety: if anyone commits v, everyone's outcome carries v.
            let check = |ex: &Executor| -> Option<String> {
                let outs: Vec<&Value> =
                    ex.pids().filter_map(|p| ex.status(p).decision()).collect();
                let committed: Vec<&Value> = outs
                    .iter()
                    .filter(|o| o.get(0).and_then(Value::as_bool) == Some(true))
                    .map(|o| o.get(1).unwrap())
                    .collect();
                if let Some(cv) = committed.first() {
                    for o in &outs {
                        if o.get(1).unwrap() != *cv {
                            return Some(format!("commit {cv} vs outcome {o}"));
                        }
                    }
                }
                None
            };
            let report = explore_all(&ex, &check, Limits::default());
            assert!(report.fully_verified(), "{report:?}");
            black_box(report.states)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_lemma11, bench_adopt_commit_verification);
criterion_main!(benches);
