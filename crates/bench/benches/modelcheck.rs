//! Bench family B8 — model-checking costs (experiments E1/E6).
//!
//! State counts and wall time of the exhaustive explorations backing the
//! impossibility results: the Lemma-11 refutation pipeline, exhaustive
//! verification of the register objects, and raw explorer throughput on
//! larger interleaving graphs, including worker-thread scaling.
//!
//! Regenerate `BENCH_modelcheck.json` with:
//! `CRITERION_JSON=bench.json cargo bench -p wfa-bench --bench modelcheck`
//! (see DESIGN.md "Explorer architecture & bench methodology").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use wfa::kernel::executor::Executor;
use wfa::kernel::memory::RegKey;
use wfa::kernel::process::DynProcess;
use wfa::kernel::process::{Process, Status, StepCtx};
use wfa::kernel::value::Value;
use wfa::modelcheck::explorer::{explore_all, Explorer, Limits};
use wfa::modelcheck::lemma11::refute_strong_2_renaming;
use wfa::algorithms::renaming::RenamingFig4;
use wfa::objects::adopt_commit::AdoptCommit;
use wfa::objects::driver::{Driver, Step};

fn bench_lemma11(c: &mut Criterion) {
    let mut g = c.benchmark_group("modelcheck/lemma11");
    g.sample_size(10);
    g.bench_function("fig4_refutation", |b| {
        let cand = |i: usize| Box::new(RenamingFig4::new(i, 4)) as Box<dyn DynProcess>;
        b.iter(|| {
            let r = refute_strong_2_renaming(&cand, &[0, 1, 2], Limits::default());
            assert!(r.refuted());
            black_box(r.report.states)
        });
    });
    let cand = |i: usize| Box::new(RenamingFig4::new(i, 4)) as Box<dyn DynProcess>;
    let r = refute_strong_2_renaming(&cand, &[0, 1, 2], Limits::default());
    eprintln!("lemma11/fig4: {} distinct states, exhaustive={}", r.report.states, !r.report.truncated);
    g.finish();
}

/// Adopt-commit wrapped as a deciding process (for exhaustive exploration).
#[derive(Clone, Hash)]
struct AcProc(AdoptCommit);

impl Process for AcProc {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Status {
        match self.0.poll(ctx) {
            Step::Pending => Status::Running,
            Step::Done(out) => Status::Decided(Value::tuple([
                Value::Bool(out.is_commit()),
                out.value().clone(),
            ])),
        }
    }
}

fn adopt_commit_instance(parties: u32) -> Executor {
    let mut ex = Executor::new();
    for p in 0..parties {
        ex.add_process(Box::new(AcProc(AdoptCommit::new(
            1,
            0,
            parties,
            p,
            Value::Int(p as i64),
        ))));
    }
    ex
}

/// Safety: if anyone commits v, everyone's outcome carries v.
fn adopt_commit_check(ex: &Executor) -> Option<String> {
    let outs: Vec<&Value> = ex.pids().filter_map(|p| ex.status(p).decision()).collect();
    let committed: Vec<&Value> = outs
        .iter()
        .filter(|o| o.get(0).and_then(Value::as_bool) == Some(true))
        .map(|o| o.get(1).unwrap())
        .collect();
    if let Some(cv) = committed.first() {
        for o in &outs {
            if o.get(1).unwrap() != *cv {
                return Some(format!("commit {cv} vs outcome {o}"));
            }
        }
    }
    None
}

fn bench_adopt_commit_verification(c: &mut Criterion) {
    let mut g = c.benchmark_group("modelcheck/adopt_commit");
    g.sample_size(10);
    g.bench_function("two_parties_exhaustive", |b| {
        b.iter(|| {
            let ex = adopt_commit_instance(2);
            let report = explore_all(&ex, &adopt_commit_check, Limits::default());
            assert!(report.fully_verified(), "{report:?}");
            black_box(report.states)
        });
    });
    g.bench_function("three_parties_exhaustive", |b| {
        b.iter(|| {
            let ex = adopt_commit_instance(3);
            let report = explore_all(&ex, &adopt_commit_check, Limits::default());
            assert!(report.fully_verified(), "{report:?}");
            black_box(report.states)
        });
    });
    let report = explore_all(&adopt_commit_instance(3), &adopt_commit_check, Limits::default());
    eprintln!("adopt_commit/three_parties: {} distinct states", report.states);
    g.finish();
}

/// Increments a shared counter `n` times, then decides its final read — the
/// widest-branching small automaton we have; `k` of them produce a dense
/// interleaving graph that isolates raw explorer throughput.
#[derive(Clone, Hash)]
struct RacyCounter {
    left: u32,
    val: i64,
    reading: bool,
}

impl Process for RacyCounter {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Status {
        let k = RegKey::new(1);
        if self.reading {
            self.val = ctx.read(k).as_int().unwrap_or(0);
            self.reading = false;
            if self.left == 0 {
                return Status::Decided(Value::Int(self.val));
            }
        } else {
            ctx.write(k, Value::Int(self.val + 1));
            self.left -= 1;
            self.reading = true;
        }
        Status::Running
    }
}

fn counters_instance(procs: usize, increments: u32) -> Executor {
    let mut ex = Executor::new();
    for _ in 0..procs {
        ex.add_process(Box::new(RacyCounter { left: increments, val: 0, reading: true }));
    }
    ex
}

fn bench_counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("modelcheck/counters");
    g.sample_size(10);
    g.bench_function("three_racy_counters", |b| {
        b.iter(|| {
            let ex = counters_instance(3, 3);
            let report = explore_all(&ex, &|_| None, Limits::default());
            assert!(report.fully_verified(), "{report:?}");
            black_box(report.states)
        });
    });
    let report = explore_all(&counters_instance(3, 3), &|_| None, Limits::default());
    eprintln!("counters/three_racy_counters: {} distinct states", report.states);
    g.finish();
}

/// Worker-thread scaling of the parallel sweep on a fixed instance. The
/// report is thread-count-invariant (determinism suite), so these entries
/// measure pure wall-clock scaling of the work-stealing pool.
fn bench_thread_scaling(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    if cores < 2 {
        // Flat numbers here would otherwise read as "the pool does not
        // scale" when the host simply cannot run two workers at once.
        eprintln!(
            "modelcheck/threads: host exposes {cores} core(s); t2/t4/t8 entries measure \
             oversubscription, not scaling — expect flat or worse wall-clock"
        );
    }
    let mut g = c.benchmark_group("modelcheck/threads");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(format!("three_counters_t{threads}"), |b| {
            b.iter(|| {
                let ex = counters_instance(3, 3);
                let check = |_: &Executor| None;
                let report = Explorer::new(ex.pids().collect(), &check, Limits::default())
                    .threads(threads)
                    .run(&ex);
                assert!(report.fully_verified(), "{report:?}");
                black_box(report.states)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lemma11,
    bench_adopt_commit_verification,
    bench_counters,
    bench_thread_scaling
);
criterion_main!(benches);
