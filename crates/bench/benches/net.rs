//! Bench family B9 — the message-passing backend's emulation overhead.
//!
//! Every register operation over the ABD backend becomes a two-phase
//! majority protocol (2 phases × `nodes` replicas × 2 message legs), so the
//! predicted shapes are: a constant-factor slowdown versus shared memory at
//! fixed topology (per-op message fan-out plus replica-map bookkeeping), and
//! overhead growing linearly with the replica count while *schedule slots to
//! decision stay identical* (the emulation is observationally transparent —
//! pinned by `tests/e14_net.rs`).
//!
//! The shm-vs-net medians recorded in `BENCH_net.json` come from the same
//! drivers (see the regeneration command in that file's description).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wfa_bench::wfa::obs::metrics::MetricsHandle;
use wfa_bench::{run_ksa, run_ksa_backend};

/// B9a: shared memory vs. the ABD backend on the same fixed-shape run.
fn bench_shm_vs_net(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/ksa_backend");
    g.sample_size(10);
    let (n, k, stab) = (4usize, 2usize, 50u64);
    g.bench_function("shm", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_ksa(n, k, stab, seed));
        });
    });
    g.bench_function("abd", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_ksa_backend(n, k, stab, seed, &MetricsHandle::disabled(), n));
        });
    });
    g.finish();
}

/// B9b: overhead vs. replica count — per-op traffic is `4 * nodes` messages,
/// so wall-clock should grow linearly in `nodes` at fixed op count.
fn bench_replica_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("net/ksa_replicas");
    g.sample_size(10);
    let (n, k, stab) = (4usize, 2usize, 50u64);
    for nodes in [3usize, 5, 9] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_ksa_backend(n, k, stab, seed, &MetricsHandle::disabled(), nodes));
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_shm_vs_net, bench_replica_scaling);
criterion_main!(benches);
