//! Bench family B-obj — wait-free object costs.
//!
//! Step counts and throughput of the register objects everything else is
//! built from: adopt-commit, safe agreement (propose + resolve), the
//! splitter, and the one-shot immediate snapshot. The shapes are all
//! collect-dominated: linear in the party count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wfa::kernel::memory::SharedMemory;
use wfa::kernel::process::StepCtx;
use wfa::kernel::value::{Pid, Value};
use wfa::objects::adopt_commit::AdoptCommit;
use wfa::objects::driver::{Driver, Step};
use wfa::objects::immediate_snapshot::ImmediateSnapshot;
use wfa::objects::safe_agreement::{SaPropose, SaResolve};
use wfa::objects::splitter::Splitter;

/// Drives a driver to completion solo; returns (steps, output).
fn solo<D: Driver>(mem: &mut SharedMemory, mut d: D) -> (u64, D::Output) {
    let mut steps = 0;
    loop {
        let mut ctx = StepCtx::new(mem, None, steps, Pid(0), 1);
        steps += 1;
        if let Step::Done(out) = d.poll(&mut ctx) {
            return (steps, out);
        }
    }
}

fn bench_adopt_commit(c: &mut Criterion) {
    let mut g = c.benchmark_group("objects/adopt_commit");
    for parties in [2u32, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(parties), &parties, |b, &p| {
            let mut inst = 0;
            b.iter(|| {
                inst += 1;
                let mut mem = SharedMemory::new();
                black_box(solo(&mut mem, AdoptCommit::new(1, inst, p, 0, Value::Int(1))))
            });
        });
        let mut mem = SharedMemory::new();
        let (steps, _) = solo(&mut mem, AdoptCommit::new(1, 999, parties, 0, Value::Int(1)));
        eprintln!("adopt-commit parties={parties}: {steps} steps solo");
    }
    g.finish();
}

fn bench_safe_agreement(c: &mut Criterion) {
    let mut g = c.benchmark_group("objects/safe_agreement");
    for parties in [2u32, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(parties), &parties, |b, &p| {
            let mut inst = 0;
            b.iter(|| {
                inst += 1;
                let mut mem = SharedMemory::new();
                let (s1, ()) = solo(&mut mem, SaPropose::new(2, inst, p, 0, Value::Int(1)));
                let (s2, v) = solo(&mut mem, SaResolve::new(2, inst, p));
                black_box((s1 + s2, v))
            });
        });
        let mut mem = SharedMemory::new();
        let (s1, ()) = solo(&mut mem, SaPropose::new(2, 999, parties, 0, Value::Int(1)));
        let (s2, _) = solo(&mut mem, SaResolve::new(2, 999, parties));
        eprintln!("safe-agreement parties={parties}: {s1}+{s2} steps propose+resolve solo");
    }
    g.finish();
}

fn bench_splitter_and_is(c: &mut Criterion) {
    let mut g = c.benchmark_group("objects/renaming_blocks");
    g.bench_function("splitter_solo", |b| {
        let mut inst = 0;
        b.iter(|| {
            inst += 1;
            let mut mem = SharedMemory::new();
            black_box(solo(&mut mem, Splitter::new(3, inst, 7)))
        });
    });
    for parties in [2u32, 8] {
        g.bench_with_input(
            BenchmarkId::new("immediate_snapshot_solo", parties),
            &parties,
            |b, &p| {
                let mut inst = 0;
                b.iter(|| {
                    inst += 1;
                    let mut mem = SharedMemory::new();
                    black_box(solo(&mut mem, ImmediateSnapshot::new(4, inst, p, 0, Value::Int(1))))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_adopt_commit, bench_safe_agreement, bench_splitter_and_is);
criterion_main!(benches);
