//! Bench families B5/B6 — the two simulation layers.
//!
//! * BG-simulation (experiment E-bg, §4.1): real steps per simulated step as
//!   a function of simulators × codes — the overhead is dominated by the
//!   board snapshot plus safe-agreement scans, so it grows with both.
//! * The Figure-2 engine / Theorem-9 solver (experiment E5): schedule slots
//!   for the full double-machinery to carry a renaming task end-to-end with
//!   `¬Ωk` advice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wfa::core::bg::BgSim;
use wfa::core::code::RegisterSimCode;
use wfa::core::harness::EfdRun;
use wfa::core::solver::{theorem9_system, RenamingBuilder};
use wfa::fd::detectors::FdGen;
use wfa::fd::pattern::FailurePattern;
use wfa::kernel::executor::Executor;
use wfa::kernel::sched::{run_schedule, NullEnv, RandomSched};
use wfa::kernel::value::Value;
use wfa::algorithms::renaming::RenamingFig4;

type Code = RegisterSimCode<RenamingFig4>;

fn codes(n_codes: usize) -> Vec<Code> {
    (0..n_codes).map(|i| RegisterSimCode::new(i, RenamingFig4::new(i, n_codes + 1))).collect()
}

/// Runs BG to all-codes-decided; returns real schedule slots consumed.
fn run_bg(n_sims: usize, n_codes: usize, seed: u64) -> u64 {
    let mut ex = Executor::new();
    for s in 0..n_sims {
        ex.add_process(Box::new(BgSim::new(s as u32, n_sims as u32, codes(n_codes), None)));
    }
    let mut sched = RandomSched::over_all(&ex, seed);
    run_schedule(&mut ex, &mut sched, &mut NullEnv, 5_000_000);
    assert!(ex.quiescent(), "BG bench run did not finish");
    ex.clock()
}

fn bench_bg(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation/bg");
    g.sample_size(10);
    for (sims, n_codes) in [(1usize, 3usize), (2, 3), (3, 3), (2, 6), (4, 6)] {
        let id = format!("s{sims}_c{n_codes}");
        g.bench_with_input(BenchmarkId::from_parameter(&id), &(sims, n_codes), |b, &(s, n)| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_bg(s, n, seed));
            });
        });
        let slots = run_bg(sims, n_codes, 1);
        eprintln!("bg sims={sims} codes={n_codes}: {slots} real slots to finish");
    }
    g.finish();
}

/// Full Theorem-9 solver run (renaming with advice); returns slots.
fn run_solver(n: usize, k: usize, seed: u64) -> u64 {
    let inputs: Vec<Value> = (0..n).map(|i| Value::Int(1000 + i as i64)).collect();
    let (c, s) = theorem9_system(n, k, &inputs, RenamingBuilder { m: n });
    let fd = FdGen::vector_omega_k(FailurePattern::failure_free(n), k, 100, seed);
    let mut run = EfdRun::new(c, s, fd);
    let mut sched = run.fair_sched(seed ^ 3);
    run.run_until_decided(&mut sched, 20_000_000).expect("solver bench run did not finish")
}

fn bench_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation/theorem9_solver");
    g.sample_size(10);
    for (n, k) in [(3usize, 1usize), (3, 2), (4, 2)] {
        let id = format!("n{n}_k{k}");
        g.bench_with_input(BenchmarkId::from_parameter(&id), &(n, k), |b, &(n, k)| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_solver(n, k, seed));
            });
        });
        let slots = run_solver(n, k, 1);
        eprintln!("theorem9 n={n} k={k}: {slots} slots (consensus-per-simulated-step cost)");
    }
    g.finish();
}

criterion_group!(benches, bench_bg, bench_solver);
criterion_main!(benches);
