//! B10 — net-backend throughput: op batching × register sharding × replicas.
//!
//! Two workload loops drive ≥10⁶ register ops through the ABD backend:
//!
//! * **Closed loop** — complete EFD pipelines (k-set agreement via
//!   [`EfdRun`], renaming via k-concurrent ensembles) run back-to-back with
//!   fresh seeds until the cell's op budget is consumed. Each pipeline
//!   issues its natural register-access pattern — tight same-pid
//!   read/snapshot loops — which is exactly what op batching rewards.
//! * **Open loop** — a seeded synthetic op stream aimed directly at the
//!   backend, with a `burst` knob controlling how many consecutive ops share
//!   a pid before the "arrival process" switches clients. `burst = 1` is the
//!   adversarial arrival order (every op flushes the previous client's
//!   batch); large bursts model the per-process loops of the paper's
//!   constructions.
//!
//! Everything in a [`CellStats`] is a deterministic function of the spec and
//! seed — op counts, message counts, batch rounds, per-shard traffic — so
//! the [`b10_report`] JSON is byte-identical for every `WFA_THREADS` value
//! (CI-enforced). Wall-clock ops/sec exists only in the `--ignored`
//! `emit_bench_net_throughput` regenerator, which writes
//! `BENCH_net_throughput.json` (methodology: EXPERIMENTS.md B10).

use wfa::kernel::backend::MemoryBackend;
use wfa::kernel::executor::Executor;
use wfa::kernel::memory::{RegKey, SharedMemory};
use wfa::kernel::sched::{run_schedule, KConcurrent, NullEnv};
use wfa::kernel::value::{Pid, Value};
use wfa::net::abd::{sharded_backend, AbdBackend};
use wfa::net::config::{NetConfig, ShardMap};
use wfa::obs::local as obs_local;
use wfa::obs::metrics::{Counter, MetricsHandle};
use wfa::algorithms::renaming::RenamingFig4;

use crate::run_ksa_with;

/// The backend shape of one B10 cell: `shards` independent replica groups
/// of `nodes` replicas each, every group batching up to `batch_max`
/// same-pid ops per quorum round.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BackendSpec {
    /// Replicas per shard group.
    pub nodes: usize,
    /// Independent replica groups (`1` = the classic unsharded backend).
    pub shards: usize,
    /// `NetConfig::batch_max` for every group (`1` = unbatched).
    pub batch_max: u64,
}

impl BackendSpec {
    /// Unsharded `nodes`-replica backend with batching factor `batch_max`.
    pub fn new(nodes: usize, shards: usize, batch_max: u64) -> BackendSpec {
        BackendSpec { nodes, shards, batch_max }
    }

    /// Total replicas across all groups.
    pub fn total_replicas(&self) -> usize {
        self.nodes * self.shards
    }

    /// Stable row-id fragment, e.g. `abd_n8`, `abd_n8_b16`, `abd_2x6_b4`.
    pub fn id(&self) -> String {
        let base = if self.shards > 1 {
            format!("abd_{}x{}", self.shards, self.nodes)
        } else {
            format!("abd_n{}", self.nodes)
        };
        if self.batch_max > 1 {
            format!("{base}_b{}", self.batch_max)
        } else {
            base
        }
    }

    /// Builds the backend with the CLI's seed derivation (`seed ^ 0x7e7`),
    /// so fixed-seed cells replay the identical network.
    pub fn build(&self, seed: u64) -> Box<dyn MemoryBackend> {
        let mut cfg = NetConfig::new(self.nodes, seed ^ 0x7e7);
        cfg.batch_max = self.batch_max;
        if self.shards > 1 {
            Box::new(sharded_backend(&cfg, &ShardMap::new(self.shards, self.nodes)))
        } else {
            Box::new(AbdBackend::new(cfg))
        }
    }
}

/// Deterministic outcome of one throughput cell. Every field is a pure
/// function of the cell spec and base seed.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CellStats {
    /// Pipeline runs completed (`1` for open-loop stream cells).
    pub runs: u64,
    /// Schedule-level register ops (reads + writes; a snapshot counts one).
    /// Identical across batch/shard settings for the same pipeline and
    /// seeds, which is what makes cells comparable.
    pub ops: u64,
    /// Individual quorum-served register ops (snapshot fan-out counted per
    /// read; a dropped batch tail at run end is not counted).
    pub quorum_ops: u64,
    /// Network messages sent across all shard groups.
    pub msgs: u64,
    /// Coalesced quorum rounds flushed (`0` when unbatched).
    pub batch_rounds: u64,
    /// Ops that rode a coalesced round (`0` when unbatched).
    pub batched_ops: u64,
    /// Messages attributed to shard groups 0..3 (group ≥ 3 folds into the
    /// last counter).
    pub shard_msgs: [u64; 4],
    /// Schedule slots consumed by closed-loop pipeline runs (`0` for
    /// open-loop streams).
    pub slots: u64,
}

impl CellStats {
    /// Messages per 100 ops, the float-free efficiency headline.
    pub fn msgs_per_100_ops(&self) -> u64 {
        if self.ops == 0 {
            0
        } else {
            self.msgs * 100 / self.ops
        }
    }

    fn read(obs: &MetricsHandle, runs: u64, slots: u64, ops: Option<u64>) -> CellStats {
        CellStats {
            runs,
            ops: ops.unwrap_or_else(|| {
                obs.get(Counter::OpReads) + obs.get(Counter::OpWrites)
            }),
            quorum_ops: obs.get(Counter::NetQuorumReads) + obs.get(Counter::NetQuorumWrites),
            msgs: obs.get(Counter::NetMsgsSent),
            batch_rounds: obs.get(Counter::NetBatchRounds),
            batched_ops: obs.get(Counter::NetBatchedOps),
            shard_msgs: [
                obs.get(Counter::NetShard0Msgs),
                obs.get(Counter::NetShard1Msgs),
                obs.get(Counter::NetShard2Msgs),
                obs.get(Counter::NetShard3Msgs),
            ],
            slots,
        }
    }
}

/// The closed-loop pipeline a cell repeats.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pipeline {
    /// EFD k-set agreement (`run_ksa_with`): n parties, →Ωk advice.
    Ksa {
        /// Parties.
        n: usize,
        /// Agreement degree.
        k: usize,
        /// Advice stabilization time.
        stab: u64,
    },
    /// Figure-4 renaming under a seeded k-concurrent scheduler.
    Rename {
        /// Participants (namespace is `m = j + 1`).
        j: usize,
        /// Scheduler concurrency.
        conc: usize,
    },
}

impl Pipeline {
    fn id(&self) -> String {
        match self {
            Pipeline::Ksa { n, k, .. } => format!("ksa_n{n}k{k}"),
            Pipeline::Rename { j, conc } => format!("rename_j{j}c{conc}"),
        }
    }

    /// One pipeline run over `backend`; returns consumed schedule slots.
    fn run_once(&self, backend: Box<dyn MemoryBackend>, seed: u64, obs: &MetricsHandle) -> u64 {
        match *self {
            Pipeline::Ksa { n, k, stab } => {
                run_ksa_with(n, k, stab, seed, obs, Some(backend))
            }
            Pipeline::Rename { j, conc } => {
                let m = j + 1;
                let mut ex = Executor::new();
                ex.set_metrics(obs.clone());
                ex.set_backend(backend);
                let pids: Vec<Pid> =
                    (0..j).map(|i| ex.add_process(Box::new(RenamingFig4::new(i, m)))).collect();
                let mut sched = KConcurrent::with_seed(pids, [], conc, seed);
                run_schedule(&mut ex, &mut sched, &mut NullEnv, 5_000_000);
                0
            }
        }
    }
}

/// Closed loop: repeats `pipeline` over fresh seeds (`base_seed + run`)
/// until at least `target_ops` register ops went through the backend.
pub fn run_closed_loop(
    pipeline: Pipeline,
    be: BackendSpec,
    target_ops: u64,
    base_seed: u64,
) -> CellStats {
    let obs = MetricsHandle::counters();
    let (mut runs, mut slots) = (0u64, 0u64);
    while obs.get(Counter::OpReads) + obs.get(Counter::OpWrites) < target_ops {
        let seed = base_seed + runs;
        slots += pipeline.run_once(be.build(seed), seed, &obs);
        runs += 1;
    }
    CellStats::read(&obs, runs, slots, None)
}

/// Open loop: a seeded synthetic stream of `ops` register ops aimed
/// directly at the backend. The arrival process rotates over `pids`
/// clients, each holding the loop for `burst` consecutive ops; keys and
/// read/write mix come from a splitmix64 stream. Returned values are
/// checked against a [`SharedMemory`] mirror, so the cell is a correctness
/// probe as well as a meter.
///
/// # Panics
///
/// Panics if the backend disagrees with the mirror (linearizability bug).
pub fn run_open_loop(ops: u64, pids: usize, keys: usize, burst: u64, be: BackendSpec, seed: u64) -> CellStats {
    let obs = MetricsHandle::counters();
    let keyset: Vec<RegKey> =
        (0..keys as u32).map(|i| RegKey::new(9).at(0, i)).collect();
    let mut backend = be.build(seed);
    let mut mirror = SharedMemory::new();
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let _g = obs_local::enter(&obs, 0, 0);
    for op in 0..ops {
        let me = Pid(((op / burst.max(1)) % pids.max(1) as u64) as usize);
        let r = next();
        let key = keyset[(r >> 8) as usize % keyset.len()];
        if r & 3 == 0 {
            let val = Value::Int((r >> 32) as i64);
            backend.write(me, op, key, val.clone());
            mirror.write(key, val);
        } else {
            assert_eq!(
                backend.read(me, op, key),
                mirror.peek(key),
                "backend diverged from the shared-memory mirror at op {op}"
            );
        }
    }
    drop(backend);
    CellStats::read(&obs, 1, 0, Some(ops))
}

/// One row of the B10 report.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct B10Row {
    /// Stable row id, `<group>/<pipeline-or-stream>/<backend>`.
    pub id: String,
    /// The deterministic cell outcome.
    pub stats: CellStats,
}

impl B10Row {
    fn json(&self) -> String {
        let s = &self.stats;
        format!(
            "{{\"id\": \"{}\", \"runs\": {}, \"ops\": {}, \"quorum_ops\": {}, \"msgs\": {}, \
             \"batch_rounds\": {}, \"batched_ops\": {}, \"shard_msgs\": [{}, {}, {}, {}], \
             \"slots\": {}, \"msgs_per_100_ops\": {}}}",
            self.id,
            s.runs,
            s.ops,
            s.quorum_ops,
            s.msgs,
            s.batch_rounds,
            s.batched_ops,
            s.shard_msgs[0],
            s.shard_msgs[1],
            s.shard_msgs[2],
            s.shard_msgs[3],
            s.slots,
            s.msgs_per_100_ops(),
        )
    }
}

/// The canonical B10 cell matrix at `target_ops` register ops per cell.
///
/// Groups: `batch/*` sweeps the batching factor at 8 replicas on the ksa
/// pipeline; `shard/*` splits the same 12-replica budget into 1×12, 2×6 and
/// 4×3 groups; `rename/*` repeats the batch sweep endpoints on the renaming
/// pipeline; `stream/*` is the open-loop synthetic stream at bursts 1
/// (adversarial arrivals) and 16 (per-process loops).
pub fn b10_cells(target_ops: u64, base_seed: u64) -> Vec<B10Row> {
    let ksa = Pipeline::Ksa { n: 4, k: 2, stab: 50 };
    let rename = Pipeline::Rename { j: 3, conc: 2 };
    let mut rows = Vec::new();
    for b in [1, 4, 16] {
        let be = BackendSpec::new(8, 1, b);
        rows.push(B10Row {
            id: format!("batch/{}/{}", ksa.id(), be.id()),
            stats: run_closed_loop(ksa, be, target_ops, base_seed),
        });
    }
    for (shards, nodes) in [(1, 12), (2, 6), (4, 3)] {
        let be = BackendSpec::new(nodes, shards, 4);
        rows.push(B10Row {
            id: format!("shard/{}/{}", ksa.id(), be.id()),
            stats: run_closed_loop(ksa, be, target_ops, base_seed),
        });
    }
    for b in [1, 16] {
        let be = BackendSpec::new(4, 1, b);
        rows.push(B10Row {
            id: format!("rename/{}/{}", rename.id(), be.id()),
            stats: run_closed_loop(rename, be, target_ops, base_seed),
        });
    }
    for (burst, b) in [(1, 16), (16, 1), (16, 16)] {
        let be = BackendSpec::new(8, 1, b);
        rows.push(B10Row {
            id: format!("stream/burst{burst}/{}", be.id()),
            stats: run_open_loop(target_ops, 4, 24, burst, be, base_seed),
        });
    }
    rows
}

/// Renders the deterministic B10 report: byte-identical for every seed ×
/// op-target pair regardless of `WFA_THREADS` (the CI smoke job diffs it).
pub fn b10_report(target_ops: u64, base_seed: u64) -> String {
    let rows: Vec<String> =
        b10_cells(target_ops, base_seed).iter().map(|r| format!("    {}", r.json())).collect();
    format!(
        "{{\n  \"family\": \"B10\",\n  \"target_ops_per_cell\": {target_ops},\n  \
         \"base_seed\": {base_seed},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_loop_meets_its_op_target_and_counts_messages() {
        let stats = run_closed_loop(
            Pipeline::Ksa { n: 4, k: 2, stab: 50 },
            BackendSpec::new(4, 1, 1),
            500,
            1,
        );
        assert!(stats.ops >= 500, "{stats:?}");
        assert!(stats.runs >= 1);
        // Unbatched 4-replica ABD: 2 phases × 4 replicas × 2 legs per op.
        assert_eq!(stats.msgs, stats.ops * 16, "{stats:?}");
        assert_eq!(stats.batch_rounds, 0);
        assert_eq!(stats.shard_msgs[0], stats.msgs);
    }

    #[test]
    fn batching_cuts_messages_on_the_same_pipeline() {
        let plain = run_closed_loop(
            Pipeline::Ksa { n: 4, k: 2, stab: 50 },
            BackendSpec::new(8, 1, 1),
            400,
            1,
        );
        let batched = run_closed_loop(
            Pipeline::Ksa { n: 4, k: 2, stab: 50 },
            BackendSpec::new(8, 1, 16),
            400,
            1,
        );
        // Same pipeline, same seeds → same runs, same op stream.
        assert_eq!(plain.runs, batched.runs);
        assert_eq!(plain.ops, batched.ops);
        assert_eq!(plain.slots, batched.slots, "batching must not change schedules");
        assert!(batched.batch_rounds > 0);
        // The fair scheduler interleaves pids almost every op, so pipeline
        // coalescing comes only from multi-read steps (snapshots) — a real
        // but modest cut. The big wins live in the bursty stream cells.
        assert!(
            batched.msgs < plain.msgs,
            "batched {} vs unbatched {} messages",
            batched.msgs,
            plain.msgs
        );
    }

    #[test]
    fn sharding_splits_traffic_across_groups() {
        let stats = run_open_loop(2_000, 4, 24, 8, BackendSpec::new(3, 4, 1), 7);
        assert_eq!(stats.ops, 2_000);
        assert_eq!(stats.shard_msgs.iter().sum::<u64>(), stats.msgs);
        assert!(
            stats.shard_msgs.iter().all(|&m| m > 0),
            "every group should see traffic: {stats:?}"
        );
    }

    #[test]
    fn open_loop_burst_one_defeats_batching() {
        let adversarial = run_open_loop(1_000, 4, 24, 1, BackendSpec::new(4, 1, 16), 3);
        let bursty = run_open_loop(1_000, 4, 24, 16, BackendSpec::new(4, 1, 16), 3);
        // Interleaved arrivals flush every one-op batch; bursty arrivals
        // coalesce — same ops, very different message bills.
        assert!(bursty.msgs * 4 <= adversarial.msgs, "{bursty:?} vs {adversarial:?}");
    }

    /// Times `f` `samples` times; returns `(median, min, max, rel_var)`
    /// where the measure is ops/sec and `rel_var` is the unbiased sample
    /// variance of the per-sample ops/sec, relative to the median squared.
    fn ops_per_sec(samples: usize, ops: u64, mut f: impl FnMut(u64)) -> (f64, f64, f64, f64) {
        let mut xs: Vec<f64> = (0..samples as u64)
            .map(|s| {
                let t = std::time::Instant::now();
                f(s);
                ops as f64 / t.elapsed().as_secs_f64()
            })
            .collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        let med = xs[xs.len() / 2];
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (xs.len() as f64 - 1.0).max(1.0);
        (med, xs[0], xs[xs.len() - 1], var / (med * med))
    }

    /// Regenerates `BENCH_net_throughput.json` at the repository root:
    /// `cargo test -p wfa-bench --release emit_bench_net_throughput -- --ignored --nocapture`
    #[test]
    #[ignore = "writes BENCH_net_throughput.json; run explicitly to regenerate it"]
    fn emit_bench_net_throughput() {
        const SAMPLES: usize = 5;
        const STREAM_OPS: u64 = 200_000;
        const PIPE_OPS: u64 = 20_000;
        let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
        // Open-loop stream, bursty arrivals (per-process loops): the
        // headline batching and sharding curves.
        let stream = |be: BackendSpec| {
            ops_per_sec(SAMPLES, STREAM_OPS, |s| {
                run_open_loop(STREAM_OPS, 4, 24, 16, be, 1 + s);
            })
        };
        // Closed-loop ksa pipeline: honest end-to-end numbers where the
        // fair scheduler limits coalescing to snapshot steps.
        let pipe = |be: BackendSpec| {
            ops_per_sec(SAMPLES, PIPE_OPS, |s| {
                run_closed_loop(Pipeline::Ksa { n: 4, k: 2, stab: 50 }, be, PIPE_OPS, 1 + s * 97);
            })
        };
        let row = |curve: &str, be: BackendSpec, (med, min, max, var): (f64, f64, f64, f64)| {
            format!(
                "      {{\"id\": \"{curve}/{}\", \"shards\": {}, \"nodes\": {}, \
                 \"batch_max\": {}, \"median_ops_per_sec\": {med:.0}, \"min_ops_per_sec\": \
                 {min:.0}, \"max_ops_per_sec\": {max:.0}, \"rel_variance\": {var:.4}, \
                 \"samples\": {SAMPLES}}}",
                be.id(),
                be.shards,
                be.nodes,
                be.batch_max
            )
        };
        let batch_curve: Vec<(BackendSpec, _)> = [1u64, 2, 4, 8, 16]
            .iter()
            .map(|&b| {
                let be = BackendSpec::new(8, 1, b);
                (be, stream(be))
            })
            .collect();
        let shard_curve: Vec<(BackendSpec, _)> = [(1usize, 12usize), (2, 6), (4, 3)]
            .iter()
            .map(|&(s, n)| {
                let be = BackendSpec::new(n, s, 1);
                (be, stream(be))
            })
            .collect();
        let pipe_rows: Vec<(BackendSpec, _)> = [1u64, 16]
            .iter()
            .map(|&b| {
                let be = BackendSpec::new(8, 1, b);
                (be, pipe(be))
            })
            .collect();
        let b16_vs_b1 = batch_curve[4].1 .0 / batch_curve[0].1 .0;
        let sharded_vs_flat = shard_curve[2].1 .0 / shard_curve[0].1 .0;
        assert!(
            b16_vs_b1 >= 2.0,
            "acceptance: nodes=8 batch_max=16 must be ≥2x unbatched, got {b16_vs_b1:.2}"
        );
        assert!(
            sharded_vs_flat >= 1.5,
            "acceptance: 4x3 shards must be ≥1.5x flat 12 replicas, got {sharded_vs_flat:.2}"
        );
        let rows: Vec<String> = batch_curve
            .iter()
            .map(|(be, t)| row("stream_batch", *be, *t))
            .chain(shard_curve.iter().map(|(be, t)| row("stream_shard", *be, *t)))
            .chain(pipe_rows.iter().map(|(be, t)| row("pipeline_ksa", *be, *t)))
            .collect();
        let total_ops = (batch_curve.len() + shard_curve.len()) as u64
            * STREAM_OPS
            * SAMPLES as u64
            + pipe_rows.len() as u64 * PIPE_OPS * SAMPLES as u64;
        let text = format!(
            "{{\n  \"description\": \"B10 — ABD net-backend throughput across batching factors \
             (batch_max), register-space shards (groups x replicas-per-group) and replica \
             counts. stream_* rows: open-loop synthetic register stream, burst 16 (per-process \
             loops), 4 clients over 24 registers. pipeline_ksa rows: closed-loop EFD k-set \
             agreement runs back-to-back. Regenerate: cargo test -p wfa-bench --release \
             emit_bench_net_throughput -- --ignored --nocapture. Deterministic counter shapes: \
             wfa-cli throughput. Methodology: EXPERIMENTS.md B10, DESIGN.md section 11.\",\n  \
             \"date\": \"2026-08-08\",\n  \
             \"host\": {{\n    \"cores\": {cores},\n    \"note\": \"Single-process, \
             single-threaded driver; wall-clock variance per row is reported as rel_variance \
             (sample variance of ops/sec relative to the median squared). Ratios are more \
             stable than absolute numbers.\"\n  }},\n  \
             \"total_ops_measured\": {total_ops},\n  \
             \"results\": [\n{}\n  ],\n  \
             \"headline\": {{\n    \
             \"stream_nodes8_batch16_vs_unbatched\": {b16_vs_b1:.2},\n    \
             \"stream_shards4x3_vs_flat12\": {sharded_vs_flat:.2},\n    \
             \"pipeline_ksa_nodes8_batch16_vs_unbatched\": {pipe_ratio:.2}\n  }},\n  \
             \"notes\": [\n    \
             \"Batching coalesces adjacent same-pid ops into one two-phase quorum round: at \
             burst 16 the message bill drops ~16x and ops/sec follows.\",\n    \
             \"Sharding pays each op only its group's quorum (4*nodes_per_group messages), so \
             4x3 groups beat one 12-replica group even without batching.\",\n    \
             \"Closed-loop pipelines batch only across multi-read snapshot steps (the fair \
             scheduler interleaves pids), so their gain is real but modest; the equivalence \
             suite (tests/e16_batch_shard.rs) pins that slots and decisions never change.\"\n  \
             ]\n}}\n",
            rows.join(",\n"),
            pipe_ratio = pipe_rows[1].1 .0 / pipe_rows[0].1 .0,
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net_throughput.json");
        std::fs::write(path, &text).expect("writing BENCH_net_throughput.json");
        println!("{text}");
        println!("wrote {path}");
    }

    #[test]
    fn b10_report_is_deterministic() {
        let a = b10_report(300, 1);
        let b = b10_report(300, 1);
        assert_eq!(a, b);
        assert!(a.contains("\"family\": \"B10\""));
        assert!(a.contains("batch/ksa_n4k2/abd_n8_b16"));
        assert!(a.contains("shard/ksa_n4k2/abd_4x3_b4"));
        assert!(a.contains("stream/burst16/abd_n8_b16"));
    }
}
