//! B11 — gossip-backend economy: message bill and stabilization vs ABD.
//!
//! The gossip substrate inverts ABD's cost model: register ops are local
//! (zero messages on the op path) and freshness is paid for separately, by
//! periodic anti-entropy rounds whose cadence the `interval` knob sets. B11
//! measures both sides of that trade at n ∈ {4, 8} replicas:
//!
//! * **Message economy** — messages per 100 register ops for an open-loop
//!   synthetic stream over the gossip backend at intervals 1/4/16, against
//!   the unbatched ABD baseline's fixed 16-messages-per-op quorum bill.
//! * **Stabilization** — anti-entropy rounds needed to drive every live
//!   replica to the identical delta-state once the stream stops
//!   ([`GossipBackend::run_rounds_until_converged`]), under a clean
//!   network, through a healed partition, and through crash/recover churn.
//!
//! Everything in a [`B11Stats`] is a deterministic function of the cell
//! spec and seed, so the [`b11_report`] JSON is byte-identical for every
//! `WFA_THREADS` value. Wall-clock ops/sec exists only in the `--ignored`
//! `emit_bench_gossip` regenerator, which writes `BENCH_gossip.json`
//! (methodology: EXPERIMENTS.md B11).

use wfa::gossip::backend::GossipBackend;
use wfa::gossip::config::GossipConfig;
use wfa::kernel::backend::MemoryBackend;
use wfa::kernel::memory::RegKey;
use wfa::kernel::value::{Pid, Value};
use wfa::net::config::{NetConfig, NetFault};
use wfa::obs::local as obs_local;
use wfa::obs::metrics::{Counter, MetricsHandle};

use crate::throughput::{run_open_loop, BackendSpec};

/// The fault shape of one B11 gossip cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GossipPlan {
    /// Healthy network throughout.
    Clean,
    /// Replica 0 is partitioned off at tick 0 and healed at tick 600 —
    /// mid-stream for every B11 op budget (the net clock advances by a full
    /// round-span per anti-entropy round).
    Partition,
    /// Replica 0 crashes at tick 120 (volatile state wiped) and recovers at
    /// tick 600 (write-ahead-log heal) — the plan that exercises fallback
    /// homing and can surface genuinely stale reads.
    Churn,
}

impl GossipPlan {
    fn id(&self) -> &'static str {
        match self {
            GossipPlan::Clean => "clean",
            GossipPlan::Partition => "part",
            GossipPlan::Churn => "churn",
        }
    }

    fn faults(&self) -> Vec<NetFault> {
        match self {
            GossipPlan::Clean => Vec::new(),
            GossipPlan::Partition => {
                vec![NetFault::Partition { at: 0, nodes: vec![0] }, NetFault::Heal { at: 600 }]
            }
            GossipPlan::Churn => vec![
                NetFault::CrashReplica { at: 120, node: 0 },
                NetFault::RecoverReplica { at: 600, node: 0 },
            ],
        }
    }
}

/// The backend shape of one B11 gossip cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GossipSpec {
    /// Replica count.
    pub nodes: usize,
    /// Ops between anti-entropy rounds ([`GossipConfig::interval`]).
    pub interval: u64,
    /// Network fault shape.
    pub plan: GossipPlan,
}

impl GossipSpec {
    /// Stable row-id fragment, e.g. `gossip_n4_i1_clean`.
    pub fn id(&self) -> String {
        format!("gossip_n{}_i{}_{}", self.nodes, self.interval, self.plan.id())
    }

    /// Builds the backend with the CLI's seed derivation (`seed ^ 0x7e7`).
    pub fn build(&self, seed: u64) -> GossipBackend {
        let mut net = NetConfig::new(self.nodes, seed ^ 0x7e7);
        net.faults = self.plan.faults();
        let mut cfg = GossipConfig { net, ..GossipConfig::new(self.nodes, seed ^ 0x7e7) }
            .with_interval(self.interval);
        cfg.allow_nonmonotone = false;
        GossipBackend::new(cfg)
    }
}

/// Deterministic outcome of one B11 gossip cell — a pure function of the
/// spec and seed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct B11Stats {
    /// Register ops driven through the backend.
    pub ops: u64,
    /// Network messages sent while the stream ran (all anti-entropy: the
    /// op path itself is message-free).
    pub msgs: u64,
    /// Anti-entropy rounds run while the stream ran.
    pub rounds: u64,
    /// Deltas shipped during the stream.
    pub deltas_sent: u64,
    /// Pairwise exchanges settled by digest comparison alone (2 messages).
    pub digest_hits: u64,
    /// Reads served a value behind the global join.
    pub stale_reads: u64,
    /// Anti-entropy rounds needed after the stream stopped before every
    /// live replica held the identical delta-state, or `-1` if the cluster
    /// failed to converge within the 3n-round budget.
    pub stabilize_rounds: i64,
}

impl B11Stats {
    /// Messages per 100 ops during the stream, the float-free headline.
    pub fn msgs_per_100_ops(&self) -> u64 {
        if self.ops == 0 {
            0
        } else {
            self.msgs * 100 / self.ops
        }
    }
}

/// Open loop: a seeded synthetic stream of `ops` register ops aimed
/// directly at a gossip backend — the same splitmix64 arrival process as
/// [`run_open_loop`], minus the shared-memory mirror assert (under fault
/// plans the gossip substrate legitimately serves stale values; staleness
/// is *measured* here, not rejected). After the stream, the cell measures
/// stabilization: anti-entropy rounds to convergence with ops stopped.
pub fn run_gossip_stream(ops: u64, pids: usize, keys: usize, spec: GossipSpec, seed: u64) -> B11Stats {
    let obs = MetricsHandle::counters();
    let keyset: Vec<RegKey> = (0..keys as u32).map(|i| RegKey::new(9).at(0, i)).collect();
    let mut g = spec.build(seed);
    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let _g = obs_local::enter(&obs, 0, 0);
    for op in 0..ops {
        let me = Pid((op % pids.max(1) as u64) as usize);
        let r = next();
        let key = keyset[(r >> 8) as usize % keyset.len()];
        if r & 3 == 0 {
            g.write(me, op, key, Value::Int((r >> 32) as i64));
        } else {
            g.read(me, op, key);
        }
    }
    let stream_msgs = obs.get(Counter::NetMsgsSent);
    let stream_rounds = obs.get(Counter::NetGossipRounds);
    let budget = 3 * spec.nodes as u64;
    let stabilize = g.run_rounds_until_converged(budget).map_or(-1, |r| r as i64);
    B11Stats {
        ops,
        msgs: stream_msgs,
        rounds: stream_rounds,
        deltas_sent: obs.get(Counter::NetGossipDeltasSent),
        digest_hits: obs.get(Counter::NetGossipDigestHits),
        stale_reads: obs.get(Counter::NetGossipStaleReads),
        stabilize_rounds: stabilize,
    }
}

/// One row of the B11 report.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct B11Row {
    /// Stable row id, `<backend>/<spec>`.
    pub id: String,
    /// The deterministic cell outcome.
    pub stats: B11Stats,
}

impl B11Row {
    fn json(&self) -> String {
        let s = &self.stats;
        format!(
            "{{\"id\": \"{}\", \"ops\": {}, \"msgs\": {}, \"rounds\": {}, \"deltas_sent\": {}, \
             \"digest_hits\": {}, \"stale_reads\": {}, \"stabilize_rounds\": {}, \
             \"msgs_per_100_ops\": {}}}",
            self.id,
            s.ops,
            s.msgs,
            s.rounds,
            s.deltas_sent,
            s.digest_hits,
            s.stale_reads,
            s.stabilize_rounds,
            s.msgs_per_100_ops(),
        )
    }
}

/// The canonical B11 cell matrix at `ops` register ops per cell.
///
/// For each replica count n ∈ {4, 8}: the unbatched ABD baseline on the
/// identical op stream, the gossip interval sweep 1/4/16 on a clean
/// network, and the interval-1 partition and churn cells.
pub fn b11_cells(ops: u64, base_seed: u64) -> Vec<B11Row> {
    let mut rows = Vec::new();
    for nodes in [4usize, 8] {
        let abd = run_open_loop(ops, 4, 24, 1, BackendSpec::new(nodes, 1, 1), base_seed);
        rows.push(B11Row {
            id: format!("abd/abd_n{nodes}"),
            stats: B11Stats {
                ops: abd.ops,
                msgs: abd.msgs,
                rounds: 0,
                deltas_sent: 0,
                digest_hits: 0,
                stale_reads: 0,
                // A quorum write is durable at a majority the moment the op
                // returns: ABD has nothing left to stabilize.
                stabilize_rounds: 0,
            },
        });
        for interval in [1u64, 4, 16] {
            let spec = GossipSpec { nodes, interval, plan: GossipPlan::Clean };
            rows.push(B11Row {
                id: format!("gossip/{}", spec.id()),
                stats: run_gossip_stream(ops, 4, 24, spec, base_seed),
            });
        }
        for plan in [GossipPlan::Partition, GossipPlan::Churn] {
            let spec = GossipSpec { nodes, interval: 1, plan };
            rows.push(B11Row {
                id: format!("gossip/{}", spec.id()),
                stats: run_gossip_stream(ops, 4, 24, spec, base_seed),
            });
        }
    }
    rows
}

/// Renders the deterministic B11 report: byte-identical for every seed ×
/// op-budget pair regardless of `WFA_THREADS` (the CI gossip job diffs it).
pub fn b11_report(ops: u64, base_seed: u64) -> String {
    let rows: Vec<String> =
        b11_cells(ops, base_seed).iter().map(|r| format!("    {}", r.json())).collect();
    format!(
        "{{\n  \"family\": \"B11\",\n  \"ops_per_cell\": {ops},\n  \
         \"base_seed\": {base_seed},\n  \"rows\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_stream_undercuts_abd_and_stabilizes() {
        let ops = 2_000u64;
        let abd = run_open_loop(ops, 4, 24, 1, BackendSpec::new(4, 1, 1), 7);
        let spec = GossipSpec { nodes: 4, interval: 1, plan: GossipPlan::Clean };
        let gsp = run_gossip_stream(ops, 4, 24, spec, 7);
        assert_eq!(gsp.ops, ops);
        assert!(gsp.msgs < abd.msgs, "gossip {} vs abd {} messages", gsp.msgs, abd.msgs);
        assert_eq!(gsp.stale_reads, 0, "a healthy cluster at interval 1 never serves stale");
        assert!(gsp.stabilize_rounds >= 0, "clean stream must stabilize: {gsp:?}");
        assert!(gsp.stabilize_rounds <= 12, "within the 3n budget: {gsp:?}");
    }

    #[test]
    fn slower_cadence_trades_messages_for_stabilization() {
        let ops = 2_000u64;
        let cell = |interval| {
            run_gossip_stream(
                ops,
                4,
                24,
                GossipSpec { nodes: 4, interval, plan: GossipPlan::Clean },
                7,
            )
        };
        let (fast, slow) = (cell(1), cell(16));
        // Fewer rounds → fewer messages; the backlog the stream leaves
        // behind still drains within the 3n stabilization budget.
        assert!(slow.rounds < fast.rounds);
        assert!(slow.msgs < fast.msgs, "slow {} vs fast {}", slow.msgs, fast.msgs);
        assert!(slow.stabilize_rounds >= 0, "{slow:?}");
    }

    #[test]
    fn faulted_cells_still_stabilize_after_the_fault_clears() {
        for plan in [GossipPlan::Partition, GossipPlan::Churn] {
            for nodes in [4usize, 8] {
                let spec = GossipSpec { nodes, interval: 1, plan };
                let s = run_gossip_stream(2_000, 4, 24, spec, 7);
                assert!(
                    s.stabilize_rounds >= 0,
                    "{plan:?} n={nodes} failed to stabilize: {s:?}"
                );
            }
        }
    }

    #[test]
    fn b11_report_is_deterministic() {
        let a = b11_report(800, 7);
        let b = b11_report(800, 7);
        assert_eq!(a, b);
        assert!(a.contains("\"family\": \"B11\""));
        assert!(a.contains("abd/abd_n4"));
        assert!(a.contains("gossip/gossip_n4_i1_clean"));
        assert!(a.contains("gossip/gossip_n8_i16_clean"));
        assert!(a.contains("gossip/gossip_n4_i1_churn"));
    }

    /// Times `f` `samples` times; returns median ops/sec.
    fn ops_per_sec(samples: usize, ops: u64, mut f: impl FnMut(u64)) -> f64 {
        let mut xs: Vec<f64> = (0..samples as u64)
            .map(|s| {
                let t = std::time::Instant::now();
                f(s);
                ops as f64 / t.elapsed().as_secs_f64()
            })
            .collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    }

    /// Regenerates `BENCH_gossip.json` at the repository root:
    /// `cargo test -p wfa-bench --release emit_bench_gossip -- --ignored --nocapture`
    #[test]
    #[ignore = "writes BENCH_gossip.json; run explicitly to regenerate it"]
    fn emit_bench_gossip() {
        const SAMPLES: usize = 5;
        const OPS: u64 = 50_000;
        let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
        let gossip_rate = |nodes: usize, interval: u64| {
            ops_per_sec(SAMPLES, OPS, |s| {
                run_gossip_stream(
                    OPS,
                    4,
                    24,
                    GossipSpec { nodes, interval, plan: GossipPlan::Clean },
                    1 + s,
                );
            })
        };
        let abd_rate = |nodes: usize| {
            ops_per_sec(SAMPLES, OPS, |s| {
                run_open_loop(OPS, 4, 24, 1, BackendSpec::new(nodes, 1, 1), 1 + s);
            })
        };
        // The deterministic counter matrix at a smaller budget (the shapes
        // are budget-invariant; CI diffs this half via `wfa-cli`).
        let cells = b11_cells(2_000, 7);
        let cell = |id: &str| {
            cells.iter().find(|r| r.id == id).unwrap_or_else(|| panic!("no cell {id}")).stats
        };
        let rate_rows: Vec<String> = [4usize, 8]
            .iter()
            .flat_map(|&n| {
                let abd = abd_rate(n);
                [(format!("rate/abd_n{n}"), abd)].into_iter().chain([1u64, 4, 16].map(|i| {
                    (format!("rate/gossip_n{n}_i{i}"), gossip_rate(n, i))
                }))
            })
            .map(|(id, r)| format!("      {{\"id\": \"{id}\", \"median_ops_per_sec\": {r:.0}, \"samples\": {SAMPLES}}}"))
            .collect();
        let counter_rows: Vec<String> =
            cells.iter().map(|r| format!("      {}", r.json())).collect();
        let g4 = cell("gossip/gossip_n4_i1_clean");
        let a4 = cell("abd/abd_n4");
        let g8 = cell("gossip/gossip_n8_i1_clean");
        let a8 = cell("abd/abd_n8");
        assert!(g4.msgs < a4.msgs && g8.msgs < a8.msgs, "gossip must undercut ABD's bill");
        let text = format!(
            "{{\n  \"description\": \"B11 — gossip anti-entropy substrate vs unbatched ABD on \
             the open-loop synthetic register stream (4 clients, 24 registers). rate/* rows: \
             wall-clock ops/sec medians over {SAMPLES} seeded runs of {OPS} ops. counters/* \
             rows: deterministic per-cell economy at 2000 ops, seed 7 — messages, anti-entropy \
             rounds, deltas, digest hits, stale reads, and stabilization (anti-entropy rounds \
             to full convergence once the stream stops; -1 = did not converge in 3n). \
             Regenerate: cargo test -p wfa-bench --release emit_bench_gossip -- --ignored \
             --nocapture. Methodology: EXPERIMENTS.md B11, DESIGN.md section 13.\",\n  \
             \"date\": \"2026-08-08\",\n  \
             \"host\": {{\n    \"cores\": {cores},\n    \"note\": \"Single-process, \
             single-threaded driver; ratios are more stable than absolute numbers. The \
             deterministic counter rows are byte-identical on every host.\"\n  }},\n  \
             \"rates\": [\n{rates}\n  ],\n  \
             \"counters\": [\n{counters}\n  ],\n  \
             \"headline\": {{\n    \
             \"gossip_n4_i1_msgs_per_100_ops\": {gm4},\n    \
             \"abd_n4_msgs_per_100_ops\": {am4},\n    \
             \"gossip_n8_i1_msgs_per_100_ops\": {gm8},\n    \
             \"abd_n8_msgs_per_100_ops\": {am8},\n    \
             \"gossip_n4_i1_stabilize_rounds\": {gs4},\n    \
             \"gossip_n4_i16_stabilize_rounds\": {gs16}\n  }},\n  \
             \"notes\": [\n    \
             \"ABD pays 16 messages per op at 4 replicas (32 at 8) before any op returns; \
             gossip pays nothing per op and amortizes freshness over anti-entropy rounds, so \
             its bill scales with rounds x pairs, not ops x replicas.\",\n    \
             \"The interval knob is the stabilization-vs-bandwidth dial: slower cadence cuts \
             messages but leaves a larger backlog to drain once the stream stops — the \
             stabilize_rounds column is that backlog in rounds.\",\n    \
             \"Partition and churn cells stabilize after the fault clears (heal at tick 600); \
             churn exercises fallback homing, where genuinely stale reads can appear and are \
             counted, never panicked on.\"\n  ]\n}}\n",
            rates = rate_rows.join(",\n"),
            counters = counter_rows.join(",\n"),
            gm4 = g4.msgs_per_100_ops(),
            am4 = a4.msgs_per_100_ops(),
            gm8 = g8.msgs_per_100_ops(),
            am8 = a8.msgs_per_100_ops(),
            gs4 = g4.stabilize_rounds,
            gs16 = cell("gossip/gossip_n4_i16_clean").stabilize_rounds,
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gossip.json");
        std::fs::write(path, &text).expect("writing BENCH_gossip.json");
        println!("{text}");
        println!("wrote {path}");
    }
}
