//! # wfa-bench — benchmark harness
//!
//! One Criterion bench per experiment family (see `EXPERIMENTS.md` for the
//! experiment ↔ bench mapping). The benches measure the *shapes* the theory
//! predicts — how decision latency scales with n, k and advice stabilization
//! time, what the simulation layers cost, and where renaming's
//! advice-vs-baseline namespace crossover falls — not absolute wall-clock
//! numbers (the substrate is a deterministic simulator, not the authors'
//! testbed; there was none: the paper is pure theory).
//!
//! Shared run drivers live here so benches and integration tests measure
//! the same code paths.

use wfa::core::harness::EfdRun;
use wfa::fd::detectors::FdGen;
use wfa::fd::pattern::FailurePattern;
use wfa::kernel::backend::MemoryBackend;
use wfa::kernel::process::DynProcess;
use wfa::kernel::value::Value;
use wfa::net::abd::AbdBackend;
use wfa::net::config::NetConfig;
use wfa::obs::metrics::MetricsHandle;
use wfa::algorithms::set_agreement::{SetAgreementC, SetAgreementS};

pub mod gossip;
pub mod throughput;

pub use wfa;

/// Builds and runs EFD k-set agreement to completion; returns consumed
/// schedule slots.
///
/// # Panics
///
/// Panics if some C-process fails to decide within the budget.
pub fn run_ksa(n: usize, k: usize, stab: u64, seed: u64) -> u64 {
    run_ksa_observed(n, k, stab, seed, &MetricsHandle::disabled())
}

/// [`run_ksa`] with metrics flowing into `obs` — the same driver the
/// observability determinism suite pins exact counter values against, and
/// the baseline for measuring the enabled-registry overhead.
///
/// # Panics
///
/// Panics if some C-process fails to decide within the budget.
pub fn run_ksa_observed(n: usize, k: usize, stab: u64, seed: u64, obs: &MetricsHandle) -> u64 {
    run_ksa_backend(n, k, stab, seed, obs, 0)
}

/// [`run_ksa_observed`] over the ABD quorum-replicated register backend
/// with `nodes` replicas (`0`: plain shared memory) — the driver behind the
/// `net/*` bench family and the shm-vs-net overhead numbers in
/// `BENCH_net.json`. Uses the CLI's `--backend net` seed derivation, so
/// fixed-seed runs decide identically on both substrates.
///
/// # Panics
///
/// Panics if some C-process fails to decide within the budget.
pub fn run_ksa_backend(
    n: usize,
    k: usize,
    stab: u64,
    seed: u64,
    obs: &MetricsHandle,
    nodes: usize,
) -> u64 {
    let backend = (nodes > 0)
        .then(|| Box::new(AbdBackend::new(NetConfig::new(nodes, seed ^ 0x7e7))) as Box<_>);
    run_ksa_with(n, k, stab, seed, obs, backend)
}

/// [`run_ksa_backend`] over an arbitrary pre-built [`MemoryBackend`]
/// (`None`: plain shared memory) — the seam the B10 throughput driver uses
/// to push the same pipeline over batched and sharded backends.
///
/// # Panics
///
/// Panics if some C-process fails to decide within the budget.
pub fn run_ksa_with(
    n: usize,
    k: usize,
    stab: u64,
    seed: u64,
    obs: &MetricsHandle,
    backend: Option<Box<dyn MemoryBackend>>,
) -> u64 {
    let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
    let c: Vec<Box<dyn DynProcess>> = inputs
        .iter()
        .enumerate()
        .map(|(i, v)| Box::new(SetAgreementC::new(i, k as u32, v.clone())) as Box<dyn DynProcess>)
        .collect();
    let s: Vec<Box<dyn DynProcess>> = (0..n)
        .map(|q| Box::new(SetAgreementS::new(q as u32, n as u32, n, k as u32)) as Box<dyn DynProcess>)
        .collect();
    let fd = FdGen::vector_omega_k(FailurePattern::failure_free(n), k, stab, seed);
    let mut run = EfdRun::new(c, s, fd).with_metrics(obs.clone());
    if let Some(b) = backend {
        run = run.with_backend(b);
    }
    let mut sched = run.fair_sched(seed ^ 0xb5);
    run.run_until_decided(&mut sched, 5_000_000)
        .expect("undecided C-processes in bench run")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn shm_and_net_drivers_agree_on_slots() {
        for seed in 1..4 {
            let shm = run_ksa(4, 2, 50, seed);
            let net = run_ksa_backend(4, 2, 50, seed, &MetricsHandle::disabled(), 4);
            assert_eq!(shm, net, "seed {seed}: the emulation must not change the schedule");
        }
    }

    /// Times `f` `samples` times and returns `(median, min, max, variance)`
    /// in ns (variance is the unbiased sample variance, ns²).
    fn time_ns(samples: usize, mut f: impl FnMut()) -> (f64, f64, f64, f64) {
        let mut xs: Vec<f64> = (0..samples)
            .map(|_| {
                let t = Instant::now();
                f();
                t.elapsed().as_nanos() as f64
            })
            .collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (xs.len() as f64 - 1.0).max(1.0);
        (xs[xs.len() / 2], xs[0], xs[xs.len() - 1], var)
    }

    /// Regenerates `BENCH_net.json` at the repository root:
    /// `cargo test -p wfa-bench --release emit_bench_net -- --ignored --nocapture`
    #[test]
    #[ignore = "writes BENCH_net.json; run explicitly to regenerate it"]
    fn emit_bench_net() {
        const SAMPLES: usize = 15;
        let row = |id: &str, (med, min, max, var): (f64, f64, f64, f64)| {
            format!(
                "      {{\"id\": \"{id}\", \"median_ns\": {med:.1}, \"min_ns\": {min:.1}, \
                 \"max_ns\": {max:.1}, \"variance_ns2\": {var:.1}, \"samples\": {SAMPLES}}}"
            )
        };
        let ksa = |nodes: usize| {
            let mut seed = 0u64;
            time_ns(SAMPLES, || {
                seed += 1;
                run_ksa_backend(4, 2, 50, seed, &MetricsHandle::disabled(), nodes);
            })
        };
        let ksa8 = |nodes: usize| {
            let mut seed = 0u64;
            time_ns(SAMPLES, || {
                seed += 1;
                run_ksa_backend(8, 2, 50, seed, &MetricsHandle::disabled(), nodes);
            })
        };
        let (shm4, net4) = (ksa(0), ksa(4));
        let (shm8, net8) = (ksa8(0), ksa8(8));
        let (r3, r5, r9) = (ksa(3), ksa(5), ksa(9));
        let rows = [
            row("net/ksa_n4/shm", shm4),
            row("net/ksa_n4/abd_nodes4", net4),
            row("net/ksa_n8/shm", shm8),
            row("net/ksa_n8/abd_nodes8", net8),
            row("net/ksa_replicas/abd_nodes3", r3),
            row("net/ksa_replicas/abd_nodes5", r5),
            row("net/ksa_replicas/abd_nodes9", r9),
        ]
        .join(",\n");
        let text = format!(
            "{{\n  \"description\": \"Shared-memory vs. ABD quorum-replicated register backend \
             on the fixed-shape EFD k-set agreement driver (run_ksa_backend; stab=50, medians \
             over {SAMPLES} seeded runs). Regenerate: cargo test -p wfa-bench --release \
             emit_bench_net -- --ignored --nocapture. Criterion version of the same \
             measurements: cargo bench -p wfa-bench --bench net. Methodology: DESIGN.md \
             section 9.\",\n  \
             \"date\": \"2026-08-05\",\n  \
             \"host\": {{\n    \"cores\": {cores},\n    \"note\": \"Per-row variance_ns2 is \
             the unbiased sample variance of the wall-clock samples; with few cores exposed \
             it runs high, and ratios are more stable than absolute numbers. Schedule-slot \
             equality between the substrates is exact and pinned by tests/e14_net.rs, so \
             every ratio below is pure per-operation emulation cost (2 phases x nodes \
             replicas x 2 message legs per register op).\"\n  }},\n  \
             \"results\": [\n{rows}\n  ],\n  \
             \"overhead_median\": {{\n    \
             \"ksa_n4_abd4_vs_shm\": {o4:.2},\n    \
             \"ksa_n8_abd8_vs_shm\": {o8:.2},\n    \
             \"ksa_n4_abd9_vs_abd3\": {o93:.2}\n  }},\n  \
             \"notes\": [\n    \
             \"The ABD backend multiplies per-op cost, not schedule length: fixed-seed runs \
             consume identical slots and decide identical values on both substrates.\",\n    \
             \"Overhead grows with replica count (4*nodes messages per op plus per-replica \
             BTreeMap bookkeeping), roughly linearly from 3 to 9 replicas.\",\n    \
             \"Message counters for the canonical run are pinned exactly in tests/e14_net.rs: \
             292 ops -> 4672 messages at 4 replicas, zero drops on the healthy network.\"\n  \
             ]\n}}\n",
            cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1),
            o4 = net4.0 / shm4.0,
            o8 = net8.0 / shm8.0,
            o93 = r9.0 / r3.0,
        );
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
        std::fs::write(path, &text).expect("writing BENCH_net.json");
        println!("{text}");
        println!("wrote {path}");
    }
}
