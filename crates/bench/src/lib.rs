//! # wfa-bench — benchmark harness
//!
//! One Criterion bench per experiment family (see `EXPERIMENTS.md` for the
//! experiment ↔ bench mapping). The benches measure the *shapes* the theory
//! predicts — how decision latency scales with n, k and advice stabilization
//! time, what the simulation layers cost, and where renaming's
//! advice-vs-baseline namespace crossover falls — not absolute wall-clock
//! numbers (the substrate is a deterministic simulator, not the authors'
//! testbed; there was none: the paper is pure theory).
//!
//! Shared run drivers live here so benches and integration tests measure
//! the same code paths.

use wfa::core::harness::EfdRun;
use wfa::fd::detectors::FdGen;
use wfa::fd::pattern::FailurePattern;
use wfa::kernel::process::DynProcess;
use wfa::kernel::value::Value;
use wfa::obs::metrics::MetricsHandle;
use wfa::algorithms::set_agreement::{SetAgreementC, SetAgreementS};

pub use wfa;

/// Builds and runs EFD k-set agreement to completion; returns consumed
/// schedule slots.
///
/// # Panics
///
/// Panics if some C-process fails to decide within the budget.
pub fn run_ksa(n: usize, k: usize, stab: u64, seed: u64) -> u64 {
    run_ksa_observed(n, k, stab, seed, &MetricsHandle::disabled())
}

/// [`run_ksa`] with metrics flowing into `obs` — the same driver the
/// observability determinism suite pins exact counter values against, and
/// the baseline for measuring the enabled-registry overhead.
///
/// # Panics
///
/// Panics if some C-process fails to decide within the budget.
pub fn run_ksa_observed(n: usize, k: usize, stab: u64, seed: u64, obs: &MetricsHandle) -> u64 {
    let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
    let c: Vec<Box<dyn DynProcess>> = inputs
        .iter()
        .enumerate()
        .map(|(i, v)| Box::new(SetAgreementC::new(i, k as u32, v.clone())) as Box<dyn DynProcess>)
        .collect();
    let s: Vec<Box<dyn DynProcess>> = (0..n)
        .map(|q| Box::new(SetAgreementS::new(q as u32, n as u32, n, k as u32)) as Box<dyn DynProcess>)
        .collect();
    let fd = FdGen::vector_omega_k(FailurePattern::failure_free(n), k, stab, seed);
    let mut run = EfdRun::new(c, s, fd).with_metrics(obs.clone());
    let mut sched = run.fair_sched(seed ^ 0xb5);
    run.run_until_decided(&mut sched, 5_000_000)
        .expect("undecided C-processes in bench run")
}
