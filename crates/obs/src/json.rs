//! The canonical JSON encoder/decoder shared by the whole workspace.
//!
//! The build environment vendors no serialization crates, and the artifacts
//! the workspace exchanges (fault plans, violations, sweep reports, metrics
//! snapshots, trace exports) are small and of a known shape — so a ~200-line
//! JSON subset is the honest cost of replayable reports. Numbers are
//! unsigned 64-bit (all quantities here are counters, times or seeds);
//! floats are not supported.
//!
//! This is the *only* canonical encoder in the tree: `wfa-faults` re-exports
//! this module, and every byte-compared report (fault sweeps, metrics
//! snapshots, Chrome traces) serializes through [`Json`]'s whitespace-free
//! `Display`.

use std::fmt::Write as _;

/// A JSON value over `u64` numbers.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (seeds, times, counts).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved (reports are byte-compared).
    Obj(Vec<(String, Json)>),
}

/// Serializes without whitespace (canonical form for byte comparison).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn num(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let val = parse_value(bytes, pos)?;
                fields.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while matches!(bytes.get(*pos), Some(c) if c.is_ascii_digit()) {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are utf-8");
            text.parse::<u64>().map(Json::Num).map_err(|e| format!("bad number `{text}`: {e}"))
        }
        Some(c) => Err(format!("unexpected byte `{}` at {pos}", *c as char, pos = *pos)),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("fragile\"commit\n".into())),
            ("seed".into(), Json::Num(u64::MAX)),
            ("plan".into(), Json::Arr(vec![Json::Num(1), Json::Null, Json::Bool(true)])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_empty_containers() {
        let v = Json::parse(" { \"a\" : [ ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![])));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("\u{1}".into());
        assert_eq!(v.to_string(), "\"\\u0001\"");
        assert_eq!(Json::parse("\"\\u0001\"").unwrap(), v);
    }
}
