//! Deterministic observability for the EFD model.
//!
//! The literature this repository reproduces *measures* models by counting
//! oracle interactions — failure-detector queries, advice reads, simulated
//! steps — so this crate makes those counts first-class. Three layers:
//!
//! * [`metrics`] — a registry of counters and log-scale histograms that is
//!   zero-cost when disabled ([`metrics::MetricsHandle::disabled`] is a
//!   single branch per call), shard-per-job during parallel sweeps, and
//!   merges into a canonical **thread-count-invariant** snapshot;
//! * [`span`] — typed spans and events in a bounded ring with the stable
//!   ordering key `(logical_time, pid, seq)`, generalizing the kernel's
//!   step trace; [`span::Op`] is the single step formatter in the tree;
//! * [`export`] — canonical JSONL and Chrome `trace_event` exporters whose
//!   output is byte-identical across worker counts (CI diffs them at
//!   `WFA_THREADS=1` vs `8`), plus [`span::timeline`]'s ASCII space-time
//!   diagram.
//!
//! [`local`] carries the current handle through a thread-local so automata
//! (which must stay `Clone + Hash` for the kernel's `DynProcess`) can record
//! without holding a handle; [`json`] is the workspace's one canonical JSON
//! encoder, hoisted from `wfa-faults` (which re-exports it).
//!
//! This crate is deliberately dependency-free and sits at the bottom of the
//! workspace graph: every other crate may instrument through it.

#![deny(missing_docs)]

pub mod export;
pub mod json;
pub mod local;
pub mod metrics;
pub mod span;

/// Everything an instrumenting crate usually needs.
pub mod prelude {
    pub use crate::export::{to_chrome, to_jsonl};
    pub use crate::json::Json;
    pub use crate::metrics::{Counter, HistKind, MetricsHandle, Snapshot};
    pub use crate::span::{seq, timeline, EventKind, ObsEvent, Op, SpanKind};
}
