//! Timeline exporters: canonical JSONL and Chrome `trace_event` JSON.
//!
//! Both exporters consume a [`Snapshot`] plus a stable-sorted event stream
//! and serialize through the canonical [`Json`] encoder, so the output is
//! whitespace-free and byte-identical whenever the inputs are equal — the
//! CI determinism matrix diffs these bytes across `WFA_THREADS=1` and `=8`.
//!
//! All timestamps are *logical* time (the run clock), not wall-clock; a
//! Chrome trace of a run is a picture of the schedule, not of the host.

use crate::json::Json;
use crate::metrics::Snapshot;
use crate::span::{EventKind, ObsEvent};

fn event_json(ev: &ObsEvent) -> Json {
    let mut fields = vec![
        ("t".into(), Json::Num(ev.time)),
        ("pid".into(), Json::Num(u64::from(ev.pid))),
        ("seq".into(), Json::Num(u64::from(ev.seq))),
        ("kind".into(), Json::Str(ev.kind.name().into())),
    ];
    match ev.kind {
        EventKind::Step { op, decided } => {
            fields.push(("op".into(), Json::Str(op.to_string())));
            if decided {
                fields.push(("decided".into(), Json::Bool(true)));
            }
        }
        EventKind::Span { kind, dur } => {
            fields.push(("span".into(), Json::Str(kind.name().into())));
            fields.push(("dur".into(), Json::Num(dur)));
        }
        _ => {}
    }
    Json::Obj(fields)
}

/// Serializes a snapshot and event stream as JSONL: the first line is the
/// snapshot, each following line one event in stable `(time, pid, seq)`
/// order. Events must already be sorted (use `MetricsHandle::events`).
pub fn to_jsonl(snapshot: &Snapshot, events: &[ObsEvent]) -> String {
    let mut out = snapshot.to_json().to_string();
    for ev in events {
        out.push('\n');
        out.push_str(&event_json(ev).to_string());
    }
    out.push('\n');
    out
}

/// Serializes an event stream as Chrome `trace_event` JSON
/// (`{"traceEvents":[...]}` — loadable in chrome://tracing and Perfetto).
///
/// Spans become complete events (`ph:"X"`, `ts` = start, `dur` = logical
/// duration); everything else becomes an instant (`ph:"i"`, thread scope).
/// `pid` is 0 (one logical "process" per run), `tid` is the model pid, so
/// each process gets its own track. Events must already be stable-sorted.
pub fn to_chrome(events: &[ObsEvent]) -> String {
    let items = events
        .iter()
        .map(|ev| {
            let mut fields: Vec<(String, Json)> = Vec::new();
            match ev.kind {
                EventKind::Span { kind, dur } => {
                    fields.push(("name".into(), Json::Str(kind.name().into())));
                    fields.push(("ph".into(), Json::Str("X".into())));
                    fields.push(("ts".into(), Json::Num(ev.time)));
                    fields.push(("dur".into(), Json::Num(dur)));
                }
                EventKind::Step { op, decided } => {
                    let name = if decided {
                        format!("decide {op}")
                    } else {
                        format!("step {op}")
                    };
                    fields.push(("name".into(), Json::Str(name)));
                    fields.push(("ph".into(), Json::Str("i".into())));
                    fields.push(("ts".into(), Json::Num(ev.time)));
                    fields.push(("s".into(), Json::Str("t".into())));
                }
                _ => {
                    fields.push(("name".into(), Json::Str(ev.kind.name().into())));
                    fields.push(("ph".into(), Json::Str("i".into())));
                    fields.push(("ts".into(), Json::Num(ev.time)));
                    fields.push(("s".into(), Json::Str("t".into())));
                }
            }
            fields.push(("pid".into(), Json::Num(0)));
            fields.push(("tid".into(), Json::Num(u64::from(ev.pid))));
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![("traceEvents".into(), Json::Arr(items))]).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsHandle;
    use crate::span::{seq, Op, SpanKind};

    fn sample() -> (Snapshot, Vec<ObsEvent>) {
        let h = MetricsHandle::with_events(16);
        h.bump(crate::metrics::Counter::EffectiveSteps);
        h.record(ObsEvent {
            time: 0,
            pid: 1,
            seq: seq::STEP,
            kind: EventKind::Step { op: Op::Write { ns: 2, a: 1, b: 0 }, decided: false },
        });
        h.record(ObsEvent { time: 1, pid: 3, seq: seq::FD_QUERY, kind: EventKind::FdQuery });
        h.record(ObsEvent {
            time: 0,
            pid: 0,
            seq: seq::OUTCOME,
            kind: EventKind::Span { kind: SpanKind::Run, dur: 2 },
        });
        (h.snapshot().unwrap(), h.events())
    }

    #[test]
    fn jsonl_lines_parse_and_lead_with_the_snapshot() {
        let (snap, events) = sample();
        let out = to_jsonl(&snap, &events);
        let lines: Vec<&str> = out.trim_end().lines().collect();
        assert_eq!(lines.len(), 1 + events.len());
        let first = Json::parse(lines[0]).unwrap();
        assert!(first.get("counters").is_some());
        for line in &lines[1..] {
            let v = Json::parse(line).unwrap();
            assert!(v.get("kind").is_some());
        }
        // Stable order: the span at (0, 0, OUTCOME) precedes the step at (0, 1, STEP).
        assert_eq!(Json::parse(lines[1]).unwrap().get("kind").unwrap().str(), Some("span"));
    }

    #[test]
    fn chrome_export_is_valid_trace_event_json() {
        let (_, events) = sample();
        let out = to_chrome(&events);
        let v = Json::parse(&out).unwrap();
        let items = v.get("traceEvents").unwrap().arr().unwrap();
        assert_eq!(items.len(), events.len());
        let span = items.iter().find(|e| e.get("ph").unwrap().str() == Some("X")).unwrap();
        assert_eq!(span.get("dur").unwrap().num(), Some(2));
        let instant = items.iter().find(|e| e.get("ph").unwrap().str() == Some("i")).unwrap();
        assert!(instant.get("ts").is_some());
    }

    #[test]
    fn equal_inputs_export_equal_bytes() {
        let (snap_a, ev_a) = sample();
        let (snap_b, ev_b) = sample();
        assert_eq!(to_jsonl(&snap_a, &ev_a), to_jsonl(&snap_b, &ev_b));
        assert_eq!(to_chrome(&ev_a), to_chrome(&ev_b));
    }
}
