//! Typed spans and events with a deterministic ordering key.
//!
//! Every observable moment of a run is an [`ObsEvent`]: what happened
//! ([`EventKind`]), when (the run's logical time), who (the pid), and a small
//! caller-supplied intra-step ordinal (`seq`). The triple
//! `(time, pid, seq)` is a *stable ordering key*: exports sort by it, so an
//! event stream serializes to the same bytes no matter which thread recorded
//! which event or in what order the recording interleaved. No wall-clock
//! time, no global sequence counter — both would make exports depend on
//! scheduling.
//!
//! [`Op`] is the **single** formatter for step memory operations in the
//! tree: the kernel's `OpKind` `Display` and space-time diagram delegate
//! here, so a read renders as `r[ns:a,b]` (and as glyph `r`) everywhere.

use std::fmt;

/// A step's shared-memory operation, as displayed. The one formatter for
/// step rendering — timelines, trace diagrams and exports all go through
/// [`Op::glyph`] / `Display`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// No memory operation this step (local computation / polling state).
    None,
    /// A single-register read of `(ns, a, b)` (namespace + first two index
    /// coordinates — what the kernel's register keys display).
    Read {
        /// Namespace discriminator.
        ns: u16,
        /// First index coordinate.
        a: u32,
        /// Second index coordinate.
        b: u32,
    },
    /// A single-register write of `(ns, a, b)`.
    Write {
        /// Namespace discriminator.
        ns: u16,
        /// First index coordinate.
        a: u32,
        /// Second index coordinate.
        b: u32,
    },
    /// An atomic snapshot of `n` registers.
    Snapshot(u16),
}

impl Op {
    /// One-character rendering for space-time diagrams.
    pub fn glyph(&self) -> char {
        match self {
            Op::None => '·',
            Op::Read { .. } => 'r',
            Op::Write { .. } => 'w',
            Op::Snapshot(_) => 's',
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::None => write!(f, "·"),
            Op::Read { ns, a, b } => write!(f, "r[{ns}:{a},{b}]"),
            Op::Write { ns, a, b } => write!(f, "w[{ns}:{a},{b}]"),
            Op::Snapshot(n) => write!(f, "s[{n}]"),
        }
    }
}

/// What a span covered (a duration in logical time, Chrome `ph:"X"`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SpanKind {
    /// A whole run (schedule start to stop).
    Run,
    /// One simulated step of a code in a simulation engine.
    SimStep,
    /// One consensus round (ballot resolution).
    ConsensusRound,
    /// One `(plan, seed)` job of a fault sweep.
    SweepJob,
    /// One explorer work batch (depth-labelled).
    ExplorerShard,
    /// One quorum-replicated register operation over the simulated network
    /// (duration = simulated network time spent collecting the quorums).
    QuorumOp,
    /// One message's traversal of a simulated channel (duration = link
    /// delay); attributed to the process whose operation sent it.
    Channel,
    /// One successful replica re-sync: a recovering replica pulling the
    /// max-tag register state from a majority before serving again
    /// (duration = simulated network time spent on the pull rounds).
    ReplicaResync,
    /// One anti-entropy round of the gossip backend: a seeded circulant
    /// sweep of pairwise digest/delta exchanges (duration = simulated
    /// network time the round's exchanges consumed).
    AntiEntropy,
    /// One complete degraded spell, emitted at its resolution (duration =
    /// backend ticks from the spell's first degradation to the successful
    /// probe that closed it — the MTTR sample).
    DegradedSpell,
}

impl SpanKind {
    /// Stable name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::SimStep => "sim_step",
            SpanKind::ConsensusRound => "consensus_round",
            SpanKind::SweepJob => "sweep_job",
            SpanKind::ExplorerShard => "explorer_shard",
            SpanKind::QuorumOp => "quorum_op",
            SpanKind::Channel => "channel",
            SpanKind::ReplicaResync => "replica_resync",
            SpanKind::AntiEntropy => "anti_entropy",
            SpanKind::DegradedSpell => "degraded_spell",
        }
    }
}

/// What an event was.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EventKind {
    /// An effective process step and its memory operation.
    Step {
        /// The memory operation performed.
        op: Op,
        /// `true` iff this was the process's decide step.
        decided: bool,
    },
    /// An S-process consulted its failure-detector module.
    FdQuery,
    /// A write of advice into a shared advice variable.
    AdviceWrite,
    /// A successful read of advice from a shared advice variable.
    AdviceRead,
    /// A scheduled slot was consumed by a crashed process (no step taken).
    CrashSkip,
    /// A violation was attributed to this point of the run.
    Violation,
    /// A completed span starting at the event's time and covering `dur`
    /// logical time units.
    Span {
        /// What the span covered.
        kind: SpanKind,
        /// Logical duration.
        dur: u64,
    },
}

impl EventKind {
    /// Stable name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Step { .. } => "step",
            EventKind::FdQuery => "fd_query",
            EventKind::AdviceWrite => "advice_write",
            EventKind::AdviceRead => "advice_read",
            EventKind::CrashSkip => "crash_skip",
            EventKind::Violation => "violation",
            EventKind::Span { .. } => "span",
        }
    }
}

/// Canonical intra-step `seq` ordinals. Within one `(time, pid)` slot the
/// model performs at most one of each phase, in this order; fixing the
/// ordinals (instead of a global counter) keeps the ordering key
/// deterministic under any recording interleaving.
pub mod seq {
    /// The failure-detector query happens before the step body.
    pub const FD_QUERY: u32 = 0;
    /// Advice reads/writes happen inside the step body.
    pub const ADVICE: u32 = 1;
    /// Network/quorum activity also happens inside the step body; it shares
    /// the intra-step slot with advice (the sort is stable and recording is
    /// single-threaded within a step, so insertion order disambiguates
    /// deterministically).
    pub const NET: u32 = 1;
    /// The step itself (its memory op + decide flag).
    pub const STEP: u32 = 2;
    /// Outcomes attributed after the step (violations, span ends).
    pub const OUTCOME: u32 = 3;
}

/// One recorded event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ObsEvent {
    /// Logical time of the event (the run clock).
    pub time: u64,
    /// The process the event belongs to.
    pub pid: u32,
    /// Intra-step ordinal (see [`seq`]).
    pub seq: u32,
    /// What happened.
    pub kind: EventKind,
}

impl ObsEvent {
    /// The stable ordering key.
    pub fn key(&self) -> (u64, u32, u32) {
        (self.time, self.pid, self.seq)
    }
}

/// A bounded ring of [`ObsEvent`]s; oldest events are dropped first so a
/// long run keeps its most recent window (the kernel trace discipline).
#[derive(Clone, Debug, Default)]
pub struct EventRing {
    events: std::collections::VecDeque<ObsEvent>,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    /// An empty ring retaining at most `cap` events (`0`: recording off).
    pub fn new(cap: usize) -> EventRing {
        EventRing { events: std::collections::VecDeque::new(), cap, dropped: 0 }
    }

    /// `true` iff this ring records anything at all.
    pub fn is_recording(&self) -> bool {
        self.cap > 0
    }

    /// Appends an event, evicting the oldest when full. No-op when `cap`
    /// is zero.
    pub fn push(&mut self, ev: ObsEvent) {
        if self.cap == 0 {
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// The retained events sorted by the stable `(time, pid, seq)` key.
    pub fn sorted(&self) -> Vec<ObsEvent> {
        let mut evs: Vec<ObsEvent> = self.events.iter().copied().collect();
        evs.sort_by_key(ObsEvent::key);
        evs
    }

    /// Events evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` iff no event is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Renders the ASCII space-time diagram of an event stream: one row per
/// process, one column per [`EventKind::Step`] event (in key order), the
/// step's op glyph in the stepping process's row and `D` on decide steps.
///
/// This replaces (and matches) the kernel trace's ad-hoc rendering; other
/// event kinds are not drawn, so the column count equals the effective step
/// count of the window.
pub fn timeline(events: &[ObsEvent], n_procs: usize) -> String {
    let mut evs: Vec<&ObsEvent> = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Step { .. }))
        .collect();
    evs.sort_by_key(|e| e.key());
    let mut rows = vec![String::new(); n_procs];
    for ev in &evs {
        let EventKind::Step { op, decided } = ev.kind else { unreachable!("filtered") };
        for (i, row) in rows.iter_mut().enumerate() {
            if i == ev.pid as usize {
                row.push(if decided { 'D' } else { op.glyph() });
            } else {
                row.push(' ');
            }
        }
    }
    rows.iter()
        .enumerate()
        .map(|(i, r)| format!("P{i:<2} {r}"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(t: u64, p: u32, op: Op, decided: bool) -> ObsEvent {
        ObsEvent { time: t, pid: p, seq: seq::STEP, kind: EventKind::Step { op, decided } }
    }

    #[test]
    fn op_display_matches_the_kernel_contract() {
        assert_eq!(Op::None.to_string(), "·");
        assert_eq!(Op::Snapshot(5).to_string(), "s[5]");
        assert_eq!(Op::Read { ns: 3, a: 1, b: 2 }.to_string(), "r[3:1,2]");
        assert_eq!(Op::Write { ns: 9, a: 0, b: 7 }.to_string(), "w[9:0,7]");
        assert_eq!(Op::Write { ns: 1, a: 0, b: 0 }.glyph(), 'w');
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = EventRing::new(3);
        for t in 0..5 {
            ring.push(step(t, 0, Op::None, false));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.sorted()[0].time, 2);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut ring = EventRing::new(0);
        ring.push(step(0, 0, Op::None, false));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
        assert!(!ring.is_recording());
    }

    #[test]
    fn sorted_uses_the_stable_key() {
        let mut ring = EventRing::new(16);
        ring.push(step(4, 1, Op::None, false));
        ring.push(ObsEvent { time: 4, pid: 1, seq: seq::FD_QUERY, kind: EventKind::FdQuery });
        ring.push(step(2, 0, Op::None, false));
        let evs = ring.sorted();
        assert_eq!(evs[0].time, 2);
        assert_eq!(evs[1].kind, EventKind::FdQuery); // seq 0 before seq 2
        assert!(matches!(evs[2].kind, EventKind::Step { .. }));
    }

    #[test]
    fn timeline_rows_align() {
        let evs = vec![
            step(0, 0, Op::Write { ns: 1, a: 0, b: 0 }, false),
            step(1, 1, Op::Read { ns: 1, a: 0, b: 0 }, false),
            step(2, 0, Op::None, true),
            ObsEvent { time: 1, pid: 1, seq: seq::FD_QUERY, kind: EventKind::FdQuery },
        ];
        let d = timeline(&evs, 2);
        let lines: Vec<&str> = d.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('w') && lines[0].contains('D'));
        assert!(lines[1].contains('r'));
        // FdQuery events occupy no column.
        assert_eq!(lines[0].chars().count(), lines[1].chars().count());
    }
}
