//! Thread-local recording context for instrumenting deep call sites.
//!
//! The kernel's `DynProcess` blanket impl requires automata to be
//! `Clone + Hash`, so a process cannot hold a [`MetricsHandle`] as a field
//! (handles are identity objects — hashing one would poison state
//! fingerprints). Instead the executor *installs* the current handle, time
//! and pid into a thread-local just around each `proc.step(..)` call (the
//! tracing-dispatcher pattern), and deep sites — advice automata, simulation
//! engines — record through the free functions here without any plumbing.
//!
//! Determinism: the installed `(time, pid)` pair is the run's logical clock,
//! so events recorded through this module carry the same stable ordering key
//! they would with explicit plumbing. When no context is installed (the
//! executor ran without metrics, or code runs outside a step), every call is
//! a no-op.

use std::cell::RefCell;

use crate::metrics::{Counter, HistKind, MetricsHandle};
use crate::span::{EventKind, ObsEvent};

struct LocalCtx {
    handle: MetricsHandle,
    time: u64,
    pid: u32,
}

thread_local! {
    static CURRENT: RefCell<Option<LocalCtx>> = const { RefCell::new(None) };
}

/// Installs `(handle, time, pid)` as the thread's recording context for the
/// lifetime of the returned guard. Nested installs stack: dropping the guard
/// restores whatever was installed before.
///
/// Call this only with an enabled handle — installing a disabled one works
/// but wastes the thread-local store/restore.
pub fn enter(handle: &MetricsHandle, time: u64, pid: u32) -> StepGuard {
    let prev = CURRENT.with(|c| {
        c.borrow_mut().replace(LocalCtx { handle: handle.clone(), time, pid })
    });
    StepGuard { prev }
}

/// Restores the previous recording context on drop.
pub struct StepGuard {
    prev: Option<LocalCtx>,
}

impl Drop for StepGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Adds 1 to `counter` in the installed context (no-op when none).
pub fn bump(counter: Counter) {
    add(counter, 1);
}

/// Adds `n` to `counter` in the installed context (no-op when none).
pub fn add(counter: Counter, n: u64) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.handle.add(counter, n);
        }
    });
}

/// Records `value` into histogram `h` in the installed context (no-op when
/// none).
pub fn observe(h: HistKind, value: u64) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.handle.observe(h, value);
        }
    });
}

/// Records an event at the installed `(time, pid)` with ordinal `seq`
/// (no-op when no context is installed).
pub fn event(seq: u32, kind: EventKind) {
    CURRENT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.handle.record(ObsEvent { time: ctx.time, pid: ctx.pid, seq, kind });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::seq;

    #[test]
    fn records_into_the_installed_handle_and_restores_on_drop() {
        let h = MetricsHandle::with_events(8);
        {
            let _g = enter(&h, 7, 2);
            bump(Counter::AdviceWrites);
            event(seq::ADVICE, EventKind::AdviceWrite);
        }
        // Outside the guard: no-ops.
        bump(Counter::AdviceWrites);
        event(seq::ADVICE, EventKind::AdviceWrite);

        assert_eq!(h.get(Counter::AdviceWrites), 1);
        let evs = h.events();
        assert_eq!(evs.len(), 1);
        assert_eq!((evs[0].time, evs[0].pid, evs[0].seq), (7, 2, seq::ADVICE));
    }

    #[test]
    fn nested_installs_stack() {
        let outer = MetricsHandle::counters();
        let inner = MetricsHandle::counters();
        let _g1 = enter(&outer, 1, 0);
        {
            let _g2 = enter(&inner, 2, 1);
            bump(Counter::FdQueries);
        }
        bump(Counter::FdQueries);
        assert_eq!(inner.get(Counter::FdQueries), 1);
        assert_eq!(outer.get(Counter::FdQueries), 1);
    }
}
