//! The metrics registry: counters, log-scale histograms, snapshots.
//!
//! # Determinism discipline
//!
//! Every metric is declared *deterministic* or not. Deterministic metrics
//! depend only on the run's inputs (seeds, plans, limits) — never on worker
//! count or scheduling — and are the only ones included in a
//! **canonical snapshot** ([`MetricsHandle::snapshot`]), which therefore
//! serializes to the same bytes for `WFA_THREADS=1` and `=8` (CI-enforced).
//! Inherently scheduling-dependent quantities (explorer steal counts,
//! per-batch depths) still exist — they are real performance signals — but
//! only appear in the *full* snapshot ([`MetricsHandle::snapshot_full`]),
//! which is documented as non-comparable across thread counts.
//!
//! Parallel sweeps follow the `wfa-faults::sweep` index-slot discipline:
//! each job records into its own registry, and the per-job snapshots are
//! merged in job-index order ([`Snapshot::merge`] is commutative, so the
//! order is a convention, not a load-bearing trick).
//!
//! # Cost when disabled
//!
//! [`MetricsHandle`] is an `Option<Arc<Registry>>`; the disabled handle is
//! `None`, so every recording call is a single branch and the kernel's step
//! loop pays nothing when observability is off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::Json;
use crate::span::{EventRing, ObsEvent};

/// Every counter the workspace records.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // the names are the documentation; see `name()`
pub enum Counter {
    /// Schedule slots consumed by `run_schedule` (steps + crash skips).
    ScheduleSlots,
    /// Effective steps (a running process actually stepped).
    EffectiveSteps,
    /// Null steps (the scheduled process had decided or halted).
    NullSteps,
    /// Slots consumed by crashed processes.
    CrashSkips,
    /// Steps whose memory operation was a read.
    OpReads,
    /// Steps whose memory operation was a write.
    OpWrites,
    /// Steps whose memory operation was an atomic snapshot.
    OpSnapshots,
    /// Steps with no memory operation.
    OpNone,
    /// Decide steps.
    Decisions,
    /// Failure-detector queries answered by the harness.
    FdQueries,
    /// Advice values written to shared advice variables.
    AdviceWrites,
    /// Advice values successfully read from shared advice variables.
    AdviceReads,
    /// Simulated steps applied by a simulation engine (Figure 2 / BG).
    SimulatedSteps,
    /// Consensus rounds resolved (ballot decided).
    ConsensusRounds,
    /// Consensus rounds aborted to a higher ballot.
    ConsensusAborts,
    /// Safe-agreement instances resolved (BG simulation rounds).
    SafeAgreementRounds,
    /// Distinct states the explorer visited.
    ExplorerStates,
    /// Visited-set hits (a state reached again via another schedule).
    ExplorerDedupeHits,
    /// Jobs an explorer worker stole from the global frontier
    /// (**nondeterministic**: depends on worker scheduling).
    ExplorerSteals,
    /// `(plan, seed)` jobs evaluated by fault sweeps.
    SweepJobs,
    /// Violations found by fault sweeps.
    SweepViolations,
    /// Replays spent shrinking violations.
    ShrinkReplays,
    /// Messages sent by the simulated network runtime (requests + replies).
    NetMsgsSent,
    /// Messages delivered to a node's mailbox.
    NetMsgsDelivered,
    /// Messages dropped by links (partitions, drop windows, periodic loss).
    NetMsgsDropped,
    /// Messages duplicated by links.
    NetMsgsDuplicated,
    /// Broadcast rounds re-sent after an incomplete quorum.
    NetRetransmits,
    /// Quorum-replicated register reads completed.
    NetQuorumReads,
    /// Quorum-replicated register writes completed.
    NetQuorumWrites,
    /// Replica crash events applied (volatile replicas lose their store).
    NetReplicaCrashes,
    /// Replicas restored to service after a completed re-sync.
    NetReplicaRecoveries,
    /// Re-sync attempts by recovering replicas (includes failed pulls).
    NetReplicaResyncs,
    /// Messages carried by the replica-to-replica re-sync protocol
    /// (also counted in `net_msgs_sent`/`net_msgs_delivered`).
    NetResyncMsgs,
    /// Phase-2 write-backs skipped by the read-optimized ABD variant
    /// (unanimous phase-1 replies).
    NetReadbackSkips,
    /// Quorum operations that exhausted their retransmission horizon and
    /// degraded to the linearized local view.
    NetQuorumLost,
    /// Degraded spells that closed: a circuit breaker's half-open probe
    /// found its quorum again, or a stale gossip replica's reads returned
    /// inside the staleness horizon (each emits one `Resolution`).
    NetDegradationsResolved,
    /// Register operations absorbed into a batch buffer instead of paying
    /// their own quorum round (batched ABD, `batch_max > 1`).
    NetBatchedOps,
    /// Batched quorum rounds flushed (each covers one or more register ops).
    NetBatchRounds,
    /// Messages sent by replica group (shard) 0 — subset of `net_msgs_sent`.
    NetShard0Msgs,
    /// Messages sent by replica group (shard) 1.
    NetShard1Msgs,
    /// Messages sent by replica group (shard) 2.
    NetShard2Msgs,
    /// Messages sent by replica group (shard) 3 — groups beyond the fourth
    /// fold into this counter.
    NetShard3Msgs,
    /// Messages whose checksum failed verification at arrival (in-flight
    /// corruption detected by the splitmix64 digest).
    NetCorruptMsgsDetected,
    /// Corrupt messages quarantined instead of delivered (retransmission
    /// recovers them; today every detected corruption is quarantined).
    NetCorruptMsgsQuarantined,
    /// Registers wiped by a partial flush on a `PrefixDurable` replica
    /// crash (the torn write-behind suffix).
    NetPartialFlushRegisters,
    /// Anti-entropy rounds run by the gossip backend (each round is one
    /// seeded circulant sweep of pairwise digest exchanges).
    NetGossipRounds,
    /// Lattice deltas shipped between gossip replicas (one per delta record
    /// carried by an exchange's payload messages).
    NetGossipDeltasSent,
    /// Lattice deltas that were *fresh* at the receiver and advanced its
    /// causal context (duplicates are received but not counted here).
    NetGossipDeltasApplied,
    /// Anti-entropy exchanges whose Merkle root digests matched — quiescent
    /// peers that synchronized in two messages with no delta payload.
    NetGossipDigestHits,
    /// Buffered delta dots garbage-collected after a peer's causal context
    /// acknowledged them.
    NetGossipGcDots,
    /// Gossip reads that returned a value older than the global join (the
    /// local replica had not yet merged the latest write).
    NetGossipStaleReads,
    /// Fault plans enumerated by the bounded plan search before pruning.
    SweepPlansGenerated,
    /// Fault plans skipped by dominance pruning / the plan budget.
    SweepPlansPruned,
    /// Fault plans actually evaluated by the sweep.
    SweepPlansRun,
}

/// All counters, in canonical export order.
pub const COUNTERS: [Counter; 54] = [
    Counter::ScheduleSlots,
    Counter::EffectiveSteps,
    Counter::NullSteps,
    Counter::CrashSkips,
    Counter::OpReads,
    Counter::OpWrites,
    Counter::OpSnapshots,
    Counter::OpNone,
    Counter::Decisions,
    Counter::FdQueries,
    Counter::AdviceWrites,
    Counter::AdviceReads,
    Counter::SimulatedSteps,
    Counter::ConsensusRounds,
    Counter::ConsensusAborts,
    Counter::SafeAgreementRounds,
    Counter::ExplorerStates,
    Counter::ExplorerDedupeHits,
    Counter::ExplorerSteals,
    Counter::SweepJobs,
    Counter::SweepViolations,
    Counter::ShrinkReplays,
    Counter::NetMsgsSent,
    Counter::NetMsgsDelivered,
    Counter::NetMsgsDropped,
    Counter::NetMsgsDuplicated,
    Counter::NetRetransmits,
    Counter::NetQuorumReads,
    Counter::NetQuorumWrites,
    Counter::NetReplicaCrashes,
    Counter::NetReplicaRecoveries,
    Counter::NetReplicaResyncs,
    Counter::NetResyncMsgs,
    Counter::NetReadbackSkips,
    Counter::NetQuorumLost,
    Counter::NetDegradationsResolved,
    Counter::NetBatchedOps,
    Counter::NetBatchRounds,
    Counter::NetShard0Msgs,
    Counter::NetShard1Msgs,
    Counter::NetShard2Msgs,
    Counter::NetShard3Msgs,
    Counter::NetCorruptMsgsDetected,
    Counter::NetCorruptMsgsQuarantined,
    Counter::NetPartialFlushRegisters,
    Counter::NetGossipRounds,
    Counter::NetGossipDeltasSent,
    Counter::NetGossipDeltasApplied,
    Counter::NetGossipDigestHits,
    Counter::NetGossipGcDots,
    Counter::NetGossipStaleReads,
    Counter::SweepPlansGenerated,
    Counter::SweepPlansPruned,
    Counter::SweepPlansRun,
];

impl Counter {
    /// Stable snake_case name used in snapshots and exports.
    pub fn name(&self) -> &'static str {
        match self {
            Counter::ScheduleSlots => "schedule_slots",
            Counter::EffectiveSteps => "effective_steps",
            Counter::NullSteps => "null_steps",
            Counter::CrashSkips => "crash_skips",
            Counter::OpReads => "op_reads",
            Counter::OpWrites => "op_writes",
            Counter::OpSnapshots => "op_snapshots",
            Counter::OpNone => "op_none",
            Counter::Decisions => "decisions",
            Counter::FdQueries => "fd_queries",
            Counter::AdviceWrites => "advice_writes",
            Counter::AdviceReads => "advice_reads",
            Counter::SimulatedSteps => "simulated_steps",
            Counter::ConsensusRounds => "consensus_rounds",
            Counter::ConsensusAborts => "consensus_aborts",
            Counter::SafeAgreementRounds => "safe_agreement_rounds",
            Counter::ExplorerStates => "explorer_states",
            Counter::ExplorerDedupeHits => "explorer_dedupe_hits",
            Counter::ExplorerSteals => "explorer_steals",
            Counter::SweepJobs => "sweep_jobs",
            Counter::SweepViolations => "sweep_violations",
            Counter::ShrinkReplays => "shrink_replays",
            Counter::NetMsgsSent => "net_msgs_sent",
            Counter::NetMsgsDelivered => "net_msgs_delivered",
            Counter::NetMsgsDropped => "net_msgs_dropped",
            Counter::NetMsgsDuplicated => "net_msgs_duplicated",
            Counter::NetRetransmits => "net_retransmits",
            Counter::NetQuorumReads => "net_quorum_reads",
            Counter::NetQuorumWrites => "net_quorum_writes",
            Counter::NetReplicaCrashes => "net_replica_crashes",
            Counter::NetReplicaRecoveries => "net_replica_recoveries",
            Counter::NetReplicaResyncs => "net_replica_resyncs",
            Counter::NetResyncMsgs => "net_resync_msgs",
            Counter::NetReadbackSkips => "net_readback_skips",
            Counter::NetQuorumLost => "net_quorum_lost",
            Counter::NetDegradationsResolved => "net_degradations_resolved",
            Counter::NetBatchedOps => "net_batched_ops",
            Counter::NetBatchRounds => "net_batch_rounds",
            Counter::NetShard0Msgs => "net_shard0_msgs",
            Counter::NetShard1Msgs => "net_shard1_msgs",
            Counter::NetShard2Msgs => "net_shard2_msgs",
            Counter::NetShard3Msgs => "net_shard3_msgs",
            Counter::NetCorruptMsgsDetected => "net_corrupt_msgs_detected",
            Counter::NetCorruptMsgsQuarantined => "net_corrupt_msgs_quarantined",
            Counter::NetPartialFlushRegisters => "net_partial_flush_registers",
            Counter::NetGossipRounds => "net_gossip_rounds",
            Counter::NetGossipDeltasSent => "net_gossip_deltas_sent",
            Counter::NetGossipDeltasApplied => "net_gossip_deltas_applied",
            Counter::NetGossipDigestHits => "net_gossip_digest_hits",
            Counter::NetGossipGcDots => "net_gossip_gc_dots",
            Counter::NetGossipStaleReads => "net_gossip_stale_reads",
            Counter::SweepPlansGenerated => "sweep_plans_generated",
            Counter::SweepPlansPruned => "sweep_plans_pruned",
            Counter::SweepPlansRun => "sweep_plans_run",
        }
    }

    /// `true` iff the counter is thread-count invariant (canonical).
    pub fn deterministic(&self) -> bool {
        !matches!(self, Counter::ExplorerSteals)
    }

    /// The per-shard message counter for replica group `shard`; groups
    /// beyond the fourth fold into `net_shard3_msgs`.
    pub fn shard_msgs(shard: usize) -> Counter {
        match shard {
            0 => Counter::NetShard0Msgs,
            1 => Counter::NetShard1Msgs,
            2 => Counter::NetShard2Msgs,
            _ => Counter::NetShard3Msgs,
        }
    }

    fn index(&self) -> usize {
        COUNTERS.iter().position(|c| c == self).expect("every counter is listed")
    }
}

/// Log-scale (base-2 bucket) histograms the workspace records.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum HistKind {
    /// Recorded schedule length of each fault-sweep job (per-plan cost).
    PlanCost,
    /// Depth of each state batch an explorer worker expanded
    /// (**nondeterministic**: depends on how work was split).
    ShardDepth,
    /// Simulated-network latency (delivery time minus send time) of each
    /// completed quorum operation.
    QuorumLatency,
    /// Number of register ops carried by each flushed batched quorum round.
    NetBatchSize,
    /// Backend ticks each degraded spell lasted, observed at its
    /// resolution — the MTTR distribution soak reports aggregate.
    TimeToRecovery,
}

/// All histograms, in canonical export order.
pub const HISTS: [HistKind; 5] = [
    HistKind::PlanCost,
    HistKind::ShardDepth,
    HistKind::QuorumLatency,
    HistKind::NetBatchSize,
    HistKind::TimeToRecovery,
];

/// Buckets per histogram: bucket `i` holds values whose bit length is `i`
/// (bucket 0 is exactly the value 0), so the largest `u64` lands in 64.
pub const HIST_BUCKETS: usize = 65;

impl HistKind {
    /// Stable snake_case name used in snapshots and exports.
    pub fn name(&self) -> &'static str {
        match self {
            HistKind::PlanCost => "plan_cost",
            HistKind::ShardDepth => "shard_depth",
            HistKind::QuorumLatency => "quorum_latency",
            HistKind::NetBatchSize => "net_batch_size",
            HistKind::TimeToRecovery => "time_to_recovery",
        }
    }

    /// `true` iff the histogram is thread-count invariant (canonical).
    pub fn deterministic(&self) -> bool {
        !matches!(self, HistKind::ShardDepth)
    }

    fn index(&self) -> usize {
        HISTS.iter().position(|h| h == self).expect("every histogram is listed")
    }
}

/// The log2 bucket of a value.
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive lower bound of bucket `i` (for display).
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Shared recording state: lock-free counters and histograms, plus an
/// optional mutex-guarded event ring.
#[derive(Debug)]
pub struct Registry {
    counters: [AtomicU64; COUNTERS.len()],
    hists: Vec<[AtomicU64; HIST_BUCKETS]>,
    events: Mutex<EventRing>,
}

impl Registry {
    fn new(event_cap: usize) -> Registry {
        Registry {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: (0..HISTS.len()).map(|_| std::array::from_fn(|_| AtomicU64::new(0))).collect(),
            events: Mutex::new(EventRing::new(event_cap)),
        }
    }
}

/// A cheaply clonable, possibly-disabled reference to a [`Registry`].
///
/// The default handle is disabled: every recording method is a single
/// `Option` branch. Enabled handles share one registry per `Arc`, so a
/// handle threaded through an `EfdRun` and its executor accumulates into
/// one place.
#[derive(Clone, Default)]
pub struct MetricsHandle(Option<Arc<Registry>>);

impl std::fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "MetricsHandle(disabled)"),
            Some(_) => write!(f, "MetricsHandle(enabled)"),
        }
    }
}

impl MetricsHandle {
    /// The zero-cost disabled handle.
    pub fn disabled() -> MetricsHandle {
        MetricsHandle(None)
    }

    /// A fresh registry recording counters and histograms only (no events) —
    /// what parallel sweeps give each job shard.
    pub fn counters() -> MetricsHandle {
        MetricsHandle(Some(Arc::new(Registry::new(0))))
    }

    /// A fresh registry that also records up to `event_cap` events in a
    /// bounded ring.
    pub fn with_events(event_cap: usize) -> MetricsHandle {
        MetricsHandle(Some(Arc::new(Registry::new(event_cap))))
    }

    /// `true` iff recording is on.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds 1 to `c`.
    pub fn bump(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Adds `n` to `c`.
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(r) = &self.0 {
            r.counters[c.index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `value` into histogram `h`.
    pub fn observe(&self, h: HistKind, value: u64) {
        if let Some(r) = &self.0 {
            r.hists[h.index()][bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an event (no-op when disabled or the ring capacity is 0).
    pub fn record(&self, ev: ObsEvent) {
        if let Some(r) = &self.0 {
            let mut ring = r.events.lock().expect("event ring lock");
            ring.push(ev);
        }
    }

    /// The current value of `c` (0 when disabled).
    pub fn get(&self, c: Counter) -> u64 {
        match &self.0 {
            Some(r) => r.counters[c.index()].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// The retained events in stable `(time, pid, seq)` order (empty when
    /// disabled).
    pub fn events(&self) -> Vec<ObsEvent> {
        match &self.0 {
            Some(r) => r.events.lock().expect("event ring lock").sorted(),
            None => Vec::new(),
        }
    }

    /// Events evicted by the ring bound.
    pub fn events_dropped(&self) -> u64 {
        match &self.0 {
            Some(r) => r.events.lock().expect("event ring lock").dropped(),
            None => 0,
        }
    }

    /// The canonical (deterministic-metrics-only) snapshot; `None` when
    /// disabled.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.snap(true)
    }

    /// The full snapshot, including thread-count-dependent metrics; `None`
    /// when disabled. Not byte-comparable across worker counts.
    pub fn snapshot_full(&self) -> Option<Snapshot> {
        self.snap(false)
    }

    fn snap(&self, canonical: bool) -> Option<Snapshot> {
        let r = self.0.as_ref()?;
        let counters = COUNTERS
            .iter()
            .filter(|c| !canonical || c.deterministic())
            .map(|c| (c.name().to_string(), r.counters[c.index()].load(Ordering::Relaxed)))
            .collect();
        let hists = HISTS
            .iter()
            .filter(|h| !canonical || h.deterministic())
            .map(|h| {
                let buckets = r.hists[h.index()]
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then_some((i as u64, n))
                    })
                    .collect();
                (h.name().to_string(), buckets)
            })
            .collect();
        Some(Snapshot { counters, hists })
    }
}

/// A point-in-time copy of a registry: counter values (every declared
/// counter, zeros included, in canonical order) and the nonzero histogram
/// buckets. The fixed shape is what makes snapshots byte-comparable.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` in canonical counter order.
    pub counters: Vec<(String, u64)>,
    /// `(name, [(bucket, count)...])` in canonical histogram order; only
    /// nonzero buckets appear.
    pub hists: Vec<(String, Vec<(u64, u64)>)>,
}

impl Snapshot {
    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Adds every counter and bucket of `other` into `self` (commutative;
    /// sweeps merge per-job snapshots in job-index order by convention).
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, buckets) in &other.hists {
            match self.hists.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => {
                    for (b, c) in buckets {
                        match mine.iter_mut().find(|(mb, _)| mb == b) {
                            Some((_, mc)) => *mc += c,
                            None => {
                                mine.push((*b, *c));
                                mine.sort_unstable();
                            }
                        }
                    }
                }
                None => self.hists.push((name.clone(), buckets.clone())),
            }
        }
    }

    /// Metrics whose values differ: `(name, self_value, other_value)`.
    /// Counters absent from one side compare as 0; histogram buckets diff
    /// individually as `name[bucket]`, so two snapshots are equal exactly
    /// when this is empty (`obs diff` exits nonzero on *any* drift, not just
    /// counter drift).
    pub fn diff(&self, other: &Snapshot) -> Vec<(String, u64, u64)> {
        let mut names: Vec<&String> = self.counters.iter().map(|(n, _)| n).collect();
        for (n, _) in &other.counters {
            if !names.contains(&n) {
                names.push(n);
            }
        }
        let mut out: Vec<(String, u64, u64)> = names
            .into_iter()
            .filter_map(|n| {
                let a = self.counter(n).unwrap_or(0);
                let b = other.counter(n).unwrap_or(0);
                (a != b).then(|| (n.clone(), a, b))
            })
            .collect();
        let bucket = |snap: &Snapshot, name: &str, b: u64| -> u64 {
            snap.hists
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, buckets)| buckets.iter().find(|(bi, _)| *bi == b))
                .map_or(0, |(_, c)| *c)
        };
        let mut hist_names: Vec<&String> = self.hists.iter().map(|(n, _)| n).collect();
        for (n, _) in &other.hists {
            if !hist_names.contains(&n) {
                hist_names.push(n);
            }
        }
        for name in hist_names {
            let mut buckets: Vec<u64> = Vec::new();
            for snap in [self, other] {
                if let Some((_, bs)) = snap.hists.iter().find(|(n, _)| n == name) {
                    for (b, _) in bs {
                        if !buckets.contains(b) {
                            buckets.push(*b);
                        }
                    }
                }
            }
            buckets.sort_unstable();
            for b in buckets {
                let (a, o) = (bucket(self, name, b), bucket(other, name, b));
                if a != o {
                    out.push((format!("{name}[{b}]"), a, o));
                }
            }
        }
        out
    }

    /// Canonical serialization (key order is declaration order, so equal
    /// snapshots serialize to equal bytes).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(
                    self.counters.iter().map(|(n, v)| (n.clone(), Json::Num(*v))).collect(),
                ),
            ),
            (
                "hists".into(),
                Json::Obj(
                    self.hists
                        .iter()
                        .map(|(n, buckets)| {
                            (
                                n.clone(),
                                Json::Arr(
                                    buckets
                                        .iter()
                                        .map(|(b, c)| {
                                            Json::Arr(vec![Json::Num(*b), Json::Num(*c)])
                                        })
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a snapshot serialized by [`Snapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first shape mismatch.
    pub fn from_json(json: &Json) -> Result<Snapshot, String> {
        let counters_obj = json.get("counters").ok_or("snapshot lacks `counters`")?;
        let Json::Obj(fields) = counters_obj else {
            return Err("`counters` is not an object".into());
        };
        let mut counters = Vec::new();
        for (name, v) in fields {
            let n = v.num().ok_or_else(|| format!("counter `{name}` is not a number"))?;
            counters.push((name.clone(), n));
        }
        let mut hists = Vec::new();
        if let Some(Json::Obj(hfields)) = json.get("hists") {
            for (name, v) in hfields {
                let arr = v.arr().ok_or_else(|| format!("hist `{name}` is not an array"))?;
                let mut buckets = Vec::new();
                for pair in arr {
                    let p = pair.arr().filter(|p| p.len() == 2).ok_or("bad bucket pair")?;
                    buckets.push((
                        p[0].num().ok_or("bucket index is not a number")?,
                        p[1].num().ok_or("bucket count is not a number")?,
                    ));
                }
                hists.push((name.clone(), buckets));
            }
        }
        Ok(Snapshot { counters, hists })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{seq, EventKind, Op};

    #[test]
    fn disabled_handle_records_nothing() {
        let h = MetricsHandle::disabled();
        h.bump(Counter::EffectiveSteps);
        h.observe(HistKind::PlanCost, 42);
        h.record(ObsEvent { time: 0, pid: 0, seq: 0, kind: EventKind::FdQuery });
        assert!(h.snapshot().is_none());
        assert!(h.events().is_empty());
        assert_eq!(h.get(Counter::EffectiveSteps), 0);
    }

    #[test]
    fn counters_and_hists_accumulate() {
        let h = MetricsHandle::counters();
        h.bump(Counter::FdQueries);
        h.add(Counter::FdQueries, 2);
        h.observe(HistKind::PlanCost, 0);
        h.observe(HistKind::PlanCost, 5);
        h.observe(HistKind::PlanCost, 7);
        let s = h.snapshot().expect("enabled");
        assert_eq!(s.counter("fd_queries"), Some(3));
        assert_eq!(s.counter("effective_steps"), Some(0));
        let (_, buckets) = &s.hists[0];
        // 0 → bucket 0; 5 and 7 → bucket 3 (values 4..8).
        assert_eq!(buckets, &vec![(0, 1), (3, 2)]);
    }

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(3), 4);
    }

    #[test]
    fn canonical_snapshot_excludes_nondeterministic_metrics() {
        let h = MetricsHandle::counters();
        h.bump(Counter::ExplorerSteals);
        h.observe(HistKind::ShardDepth, 9);
        let canon = h.snapshot().unwrap();
        assert_eq!(canon.counter("explorer_steals"), None);
        assert!(canon.hists.iter().all(|(n, _)| n != "shard_depth"));
        let full = h.snapshot_full().unwrap();
        assert_eq!(full.counter("explorer_steals"), Some(1));
        assert!(full.hists.iter().any(|(n, _)| n == "shard_depth"));
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let h = MetricsHandle::counters();
        h.add(Counter::SweepJobs, 17);
        h.observe(HistKind::PlanCost, 130);
        let s = h.snapshot().unwrap();
        let parsed = Snapshot::from_json(&Json::parse(&s.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn merge_and_diff() {
        let a = MetricsHandle::counters();
        a.add(Counter::SweepJobs, 2);
        a.observe(HistKind::PlanCost, 3);
        let b = MetricsHandle::counters();
        b.add(Counter::SweepJobs, 5);
        b.bump(Counter::SweepViolations);
        b.observe(HistKind::PlanCost, 3);
        b.observe(HistKind::PlanCost, 100);
        let mut m = a.snapshot().unwrap();
        m.merge(&b.snapshot().unwrap());
        assert_eq!(m.counter("sweep_jobs"), Some(7));
        assert_eq!(m.counter("sweep_violations"), Some(1));
        let (_, buckets) = m.hists.iter().find(|(n, _)| n == "plan_cost").unwrap();
        assert_eq!(buckets.iter().map(|(_, c)| c).sum::<u64>(), 3);

        let d = a.snapshot().unwrap().diff(&b.snapshot().unwrap());
        assert!(d.iter().any(|(n, x, y)| n == "sweep_jobs" && *x == 2 && *y == 5));
        assert!(a.snapshot().unwrap().diff(&a.snapshot().unwrap()).is_empty());
    }

    #[test]
    fn events_sort_by_stable_key() {
        let h = MetricsHandle::with_events(8);
        h.record(ObsEvent { time: 3, pid: 1, seq: seq::STEP, kind: EventKind::Step { op: Op::None, decided: false } });
        h.record(ObsEvent { time: 3, pid: 1, seq: seq::FD_QUERY, kind: EventKind::FdQuery });
        h.record(ObsEvent { time: 1, pid: 0, seq: seq::STEP, kind: EventKind::Step { op: Op::None, decided: true } });
        let evs = h.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].time, 1);
        assert_eq!(evs[1].kind, EventKind::FdQuery);
    }
}
