//! Replay a model-checker counterexample with full observability.
//!
//! Takes the violating schedule found by the Lemma-11 refutation (a
//! concrete interleaving on which the consensus protocol derived from a
//! renaming candidate disagrees), replays it step by step with the
//! observability layer recording every effective step, and prints the
//! space-time timeline — the adversary's schedule made visible.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use wfa::kernel::executor::Executor;
use wfa::kernel::process::DynProcess;
use wfa::kernel::sched::{run_schedule, NullEnv, Replay};
use wfa::kernel::value::Value;
use wfa::modelcheck::explorer::Limits;
use wfa::modelcheck::lemma11::{refute_strong_2_renaming, ConsensusViaRenaming, BoxedAuto};
use wfa::obs::metrics::MetricsHandle;
use wfa::obs::span::timeline;
use wfa_algorithms::renaming::RenamingFig4;

fn main() {
    // 1. Find the counterexample.
    let candidate = |i: usize| Box::new(RenamingFig4::new(i, 4)) as Box<dyn DynProcess>;
    let refutation = refute_strong_2_renaming(&candidate, &[0, 1, 2], Limits::default());
    let (reason, schedule) =
        refutation.report.violation.clone().expect("Lemma 11 guarantees a counterexample");
    let (a, b) = refutation.colliding;
    println!("counterexample: {reason}");
    println!("colliding solo slots: p{a}, p{b}; schedule length {}\n", schedule.len());

    // 2. Rebuild the derived consensus instance and replay under the
    //    observability layer: every effective step becomes a stable-keyed
    //    event, and the counters double-check what the replay did.
    let obs = MetricsHandle::with_events(4096);
    let mut ex = Executor::new();
    ex.set_metrics(obs.clone());
    ex.add_process(Box::new(ConsensusViaRenaming::new(
        a,
        b,
        Value::Int(0),
        BoxedAuto(candidate(a)),
    )));
    ex.add_process(Box::new(ConsensusViaRenaming::new(
        b,
        a,
        Value::Int(1),
        BoxedAuto(candidate(b)),
    )));
    let mut replay = Replay::new(schedule);
    run_schedule(&mut ex, &mut replay, &mut NullEnv, 10_000);

    // 3. Show what happened.
    println!("space-time timeline (r = read, w = write, s = snapshot, D = decide):\n");
    println!("{}", timeline(&obs.events(), 2));
    println!();
    for pid in ex.pids() {
        match ex.status(pid).decision() {
            Some(v) => println!("{pid} decided {v} (input was {})", pid.0),
            None => println!("{pid} undecided"),
        }
    }
    let snap = obs.snapshot().expect("metrics enabled");
    println!(
        "\ncounters: {} slots, {} effective steps, {} decisions",
        snap.counter("schedule_slots").unwrap_or(0),
        snap.counter("effective_steps").unwrap_or(0),
        snap.counter("decisions").unwrap_or(0),
    );
    let d: Vec<Value> = ex
        .pids()
        .filter_map(|p| ex.status(p).decision().cloned())
        .collect();
    assert_eq!(d.len(), 2, "replay must reach both decisions");
    assert_ne!(d[0], d[1], "replay must reproduce the disagreement");
    println!("\nDisagreement reproduced: wait-free 2-process consensus is impossible,");
    println!("so no algorithm can solve strong 2-renaming 2-concurrently (Lemma 11).");
}
