//! BG-simulation live: crash a simulator, watch one code block.
//!
//! Two simulators jointly drive four renaming codes through safe-agreement
//! rounds. One simulator is frozen at a time chosen to land inside a
//! safe-agreement unsafe window; the run shows the paper's signature
//! phenomenon (§4.1): the crash blocks *at most one* code — the remaining
//! simulator finishes all the others. This blocking is precisely the
//! mechanism the Figure-1 extraction of ¬Ωk turns into failure-detector
//! information.
//!
//! ```sh
//! cargo run --release --example bg_simulation
//! ```

use wfa::core::bg::BgSim;
use wfa::core::code::RegisterSimCode;
use wfa::kernel::memory::SharedMemory;
use wfa::kernel::process::{Process, StepCtx};
use wfa::kernel::value::Pid;
use wfa_algorithms::renaming::RenamingFig4;

type Code = RegisterSimCode<RenamingFig4>;

fn codes(n: usize) -> Vec<Code> {
    (0..n).map(|i| RegisterSimCode::new(i, RenamingFig4::new(i, n + 1))).collect()
}

fn main() {
    let n_codes = 4;
    let n_sims = 2;
    let mut mem = SharedMemory::new();
    let mut sims: Vec<BgSim<Code>> =
        (0..n_sims).map(|s| BgSim::new(s as u32, n_sims as u32, codes(n_codes), None)).collect();
    let mut clock = 0u64;
    let step = |sims: &mut Vec<BgSim<Code>>, mem: &mut SharedMemory, s: usize, clock: &mut u64| {
        let mut ctx = StepCtx::new(mem, None, *clock, Pid(s), 1);
        *clock += 1;
        let _ = sims[s].step(&mut ctx);
    };

    println!("BG-simulation: {n_sims} simulators, {n_codes} renaming codes\n");

    // Interleave both simulators briefly, then freeze simulator 1.
    let freeze_at = 23; // lands inside a safe-agreement window for this run
    for t in 0..freeze_at {
        step(&mut sims, &mut mem, (t % 2) as usize, &mut clock);
    }
    println!("t={clock}: simulator 1 frozen (possibly mid-window)");

    // Simulator 0 carries on alone.
    let mut report_at = 1000u64;
    for _ in 0..200_000u64 {
        step(&mut sims, &mut mem, 0, &mut clock);
        if clock >= report_at {
            let decs = sims[0].decisions();
            let done = decs.iter().filter(|d| d.is_some()).count();
            let rounds: Vec<u32> = sims[0].progress().to_vec();
            println!("t={clock}: {done}/{n_codes} codes decided, rounds per code {rounds:?}");
            report_at *= 4;
        }
        if sims[0].decisions().iter().filter(|d| d.is_some()).count() >= n_codes - 1 {
            break;
        }
    }

    let decs = sims[0].decisions();
    println!("\nfinal view of simulator 0:");
    for (c, d) in decs.iter().enumerate() {
        match d {
            Some(v) => println!("  code {c}: decided name {v}"),
            None => println!("  code {c}: BLOCKED (simulator 1 holds its safe-agreement window)"),
        }
    }
    let blocked = decs.iter().filter(|d| d.is_none()).count();
    assert!(blocked <= 1, "one crashed simulator may block at most one code");
    println!(
        "\n{} of {n_codes} codes completed; {blocked} blocked — one crash, at most one casualty.",
        n_codes - blocked
    );
}
