//! The task hierarchy of Theorem 10, measured.
//!
//! Every task is solvable k-concurrently for a maximal `k`, and its weakest
//! failure detector in EFD is exactly `¬Ωk`. This example probes the
//! solvable side for the paper's flagship tasks and prints the
//! classification table (experiment E9): per task and concurrency level,
//! whether adversarial k-concurrent ensembles all satisfied the task, plus
//! the inferred class and weakest detector.
//!
//! ```sh
//! cargo run --release --example hierarchy
//! ```

use std::sync::Arc;

use wfa::core::classify::{concurrency_profile, ProbeOutcome};
use wfa::kernel::process::DynProcess;
use wfa::kernel::value::Value;
use wfa::tasks::agreement::SetAgreement;
use wfa::tasks::renaming::Renaming;
use wfa::tasks::task::Task;
use wfa_algorithms::one_concurrent::OneConcurrentSolver;
use wfa_algorithms::renaming::RenamingFig4;

fn probe(name: &str, task: Arc<dyn Task>, algo: &dyn Fn(usize, &Value) -> Box<dyn DynProcess>, max_k: usize) {
    let (level, rows) = concurrency_profile(&task, algo, max_k, 400, 300_000, 11);
    print!("{name:<26}");
    for row in &rows {
        let cell = match &row.outcome {
            ProbeOutcome::Satisfied { .. } => "  ✓ ",
            ProbeOutcome::Violated { .. } => "  ✗ ",
            ProbeOutcome::Stuck { .. } => "  ∅ ",
        };
        print!("{cell}");
    }
    match level {
        Some(k) => println!("  → class {k}, weakest detector ¬Ω{k}"),
        None => println!("  → no level verified"),
    }
}

fn main() {
    let n = 4;
    println!("Task hierarchy over n = {n} processes (Theorem 10)");
    println!("✓ = all adversarial k-concurrent runs satisfied the task\n");
    print!("{:<26}", "task");
    for k in 1..=n {
        print!(" k={k} ");
    }
    println!();
    println!("{}", "-".repeat(26 + 5 * n + 30));

    // Agreement family via the universal automaton (adopting choose_output).
    for k in 1..=n {
        let task: Arc<dyn Task> = Arc::new(SetAgreement::new(n, k));
        let t2 = task.clone();
        let algo = move |i: usize, input: &Value| {
            Box::new(OneConcurrentSolver::new(i, t2.clone(), input.clone())) as Box<dyn DynProcess>
        };
        let name = if k == 1 { "consensus".to_string() } else { format!("{k}-set agreement") };
        probe(&name, task, &algo, n);
    }

    // Renaming family via the Figure-4 automaton.
    let j = 3;
    for l in [j, j + 1, j + 2] {
        let task: Arc<dyn Task> = Arc::new(Renaming::new(n, j, l));
        let algo =
            |i: usize, _input: &Value| Box::new(RenamingFig4::new(i, 4)) as Box<dyn DynProcess>;
        let name = if l == j {
            format!("strong ({j},{l})-renaming")
        } else {
            format!("({j},{l})-renaming")
        };
        probe(&name, task, &algo, n);
    }

    println!("\nReading the table (paper's predictions):");
    println!("  · consensus and strong renaming sit in class 1 (weakest detector Ω);");
    println!("  · k-set agreement sits in class k (weakest detector ¬Ωk);");
    println!("  · (j, j+k−1)-renaming is solvable k-concurrently (Theorem 15),");
    println!("    so its class is ≥ k — with the exact ceiling open for some");
    println!("    (j, k) in the literature [Castañeda-Rajsbaum].");
}
