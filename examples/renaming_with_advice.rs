//! Renaming with advice (Section 5): the namespace shrinks with `k`.
//!
//! Sweeps the advice level `k` for `(j, ·)`-renaming and prints the maximum
//! name observed across adversarial ensembles:
//!
//! * restricted (no advice) wait-free runs are `j`-concurrent and need the
//!   classic `2j−1` names [Attiya et al.];
//! * with `→Ωk` advice the simulated run is k-concurrent and `j+k−1` names
//!   suffice (Theorem 16) — down to *strong renaming* (`j` names) at `k = 1`
//!   (Corollary 13, where the advice is Ω ≡ consensus power).
//!
//! ```sh
//! cargo run --release --example renaming_with_advice
//! ```

use wfa::core::harness::EfdRun;
use wfa::core::solver::{theorem9_system, RenamingBuilder};
use wfa::fd::detectors::FdGen;
use wfa::fd::pattern::FailurePattern;
use wfa::kernel::executor::Executor;
use wfa::kernel::sched::{run_schedule, KConcurrent, NullEnv};
use wfa::kernel::value::{Pid, Value};
use wfa_algorithms::renaming::RenamingFig4;

/// Max name over an ensemble of restricted k-concurrent runs of Figure 4.
fn baseline_max_name(m: usize, parts: &[usize], k: usize, seeds: u64) -> i64 {
    let mut max_name = 0;
    for seed in 0..seeds {
        let mut ex = Executor::new();
        let pids: Vec<Pid> =
            parts.iter().map(|i| ex.add_process(Box::new(RenamingFig4::new(*i, m)))).collect();
        let mut sched = KConcurrent::with_seed(pids.clone(), [], k, seed);
        run_schedule(&mut ex, &mut sched, &mut NullEnv, 1_000_000);
        for p in &pids {
            let name = ex.status(*p).decision().and_then(Value::as_int).expect("decided");
            max_name = max_name.max(name);
        }
    }
    max_name
}

/// Max name over EFD runs with →Ωk advice (Theorem 9/16 solver).
fn advice_max_name(n: usize, parts: &[usize], k: usize, seeds: u64) -> i64 {
    let mut max_name = 0;
    for seed in 0..seeds {
        let inputs: Vec<Value> = (0..n)
            .map(|i| if parts.contains(&i) { Value::Int(1000 + i as i64) } else { Value::Unit })
            .collect();
        let (c, s) = theorem9_system(n, k, &inputs, RenamingBuilder { m: n });
        let fd = FdGen::vector_omega_k(FailurePattern::failure_free(n), k, 120, seed);
        let mut run = EfdRun::new(c, s, fd);
        let mut sched = run.fair_sched(seed ^ 0xaa);
        run.run(&mut sched, 6_000_000);
        for (i, v) in run.output_vector().iter().enumerate() {
            if parts.contains(&i) {
                max_name = max_name.max(v.as_int().expect("participant decided"));
            }
        }
    }
    max_name
}

fn main() {
    let n = 4;
    let parts = [0usize, 1, 3]; // j = 3 participants, one spectator
    let j = parts.len();

    println!("(j = {j}, m = {n}) renaming — max observed name vs. advice level\n");
    println!("{:<28} {:>10} {:>14}", "configuration", "bound", "max observed");
    println!("{}", "-".repeat(56));

    // The wait-free baseline: unrestricted (j-concurrent) runs, no advice.
    let base = baseline_max_name(n, &parts, j, 60);
    println!("{:<28} {:>10} {:>14}", "wait-free (no advice)", 2 * j - 1, base);

    // Restricted runs at enforced concurrency k (what k-concurrency buys).
    for k in (1..j).rev() {
        let got = baseline_max_name(n, &parts, k, 60);
        println!("{:<28} {:>10} {:>14}", format!("k-concurrent sched (k={k})"), j + k - 1, got);
    }

    // EFD: the ¬Ωk advice *enforces* k-concurrency through simulation.
    for k in (1..=2usize).rev() {
        let got = advice_max_name(n, &parts, k, 4);
        let label = if k == 1 { "EFD advice Ω (strong!)".to_string() } else { format!("EFD advice ¬Ω{k}") };
        println!("{:<28} {:>10} {:>14}", label, j + k - 1, got);
    }

    println!("\nShape check: names shrink from 2j−1 = {} towards j = {j} as the", 2 * j - 1);
    println!("advice strengthens — the crossover of Theorem 16 / Corollary 13.");
}
