//! Lemma 11, mechanically: strong 2-renaming has no 2-concurrent solution.
//!
//! Runs the paper's Appendix D.1 argument as a pipeline against concrete
//! candidate algorithms: find two processes whose *solo* runs collide on a
//! name (pigeonhole over 2 names and ≥ 3 processes), derive a wait-free
//! 2-process consensus protocol from the candidate, and exhaustively explore
//! every interleaving of the derived protocol — producing either a concrete
//! safety-violating schedule or a pumpable forever-undecided schedule (the
//! FLP adversary, made explicit).
//!
//! ```sh
//! cargo run --release --example impossibility
//! ```

use wfa::kernel::process::DynProcess;
use wfa::modelcheck::explorer::Limits;
use wfa::modelcheck::lemma11::{refute_strong_2_renaming, replay_violation, solo_collision};
use wfa_algorithms::renaming::RenamingFig4;

fn main() {
    println!("Lemma 11: every candidate (2,2)-renaming algorithm fails\n");

    // Candidate: the Figure-4 automaton — a *correct* (2,3)-renaming
    // algorithm, i.e. the best wait-free renaming there is for j = 2. As a
    // strong (2,2)-renaming candidate it must break somewhere; the pipeline
    // shows exactly where.
    let candidate =
        |i: usize| Box::new(RenamingFig4::new(i, 4)) as Box<dyn DynProcess>;
    let pool = [0usize, 1, 2];

    println!("candidate: Figure-4 renaming (correct (2,3)-renaming)");
    match solo_collision(&candidate, &pool) {
        Some((a, b)) => println!("pigeonhole: solo runs of p{a} and p{b} take the same name"),
        None => println!("pigeonhole: no collision (solo names already leave {{1,2}})"),
    }

    let r = refute_strong_2_renaming(&candidate, &pool, Limits::default());
    println!("explored interleavings of the derived 2-process consensus protocol:");
    println!("  distinct states : {}", r.report.states);
    println!("  exhaustive      : {}", !r.report.truncated);
    match &r.report.violation {
        Some((reason, sched)) => {
            println!("  counterexample  : {reason}");
            println!("  schedule length : {}", sched.len());
            let sched_str: Vec<String> = sched.iter().map(|p| format!("{p}")).collect();
            println!("  schedule        : {}", sched_str.join(" "));
            if let Some(out) = replay_violation(&candidate, &r) {
                println!("  replayed outputs: {} vs {}", out[0], out[1]);
            }
        }
        None => match &r.report.undecided_cycle {
            Some(sched) => {
                println!("  counterexample  : forever-undecided pumpable schedule");
                println!("  cycle reached at: depth {}", sched.len());
            }
            None => println!("  (no counterexample — candidate survived?!)"),
        },
    }
    assert!(r.refuted(), "Lemma 11 demands a counterexample");
    println!("\n⇒ strong 2-renaming is not 2-concurrently solvable; by Theorem 12");
    println!("  neither is strong j-renaming for any 1 < j < n, so by Theorem 10");
    println!("  its class is 1 and its weakest failure detector is Ω (Corollary 13):");
    println!("  strong renaming ≡ consensus.");
}
