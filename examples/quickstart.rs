//! Quickstart: wait-free k-set agreement with failure-detector advice.
//!
//! Builds the EFD system of Appendix C.1 — n C-processes that must output in
//! finitely many of *their own* steps, and n crash-prone S-processes whose
//! `→Ωk` advice drives leader-based consensus instances — runs it under an
//! adversarial schedule where some C-processes stop forever, and shows that
//! the survivors still decide (wait-freedom with advice).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wfa::core::harness::{EfdRun, RunReport};
use wfa::fd::detectors::FdGen;
use wfa::fd::pattern::FailurePattern;
use wfa::fd::spec::check_vector_omega_k;
use wfa::kernel::process::DynProcess;
use wfa::kernel::sched::Starve;
use wfa::kernel::value::{Pid, Value};
use wfa::tasks::agreement::SetAgreement;
use wfa::tasks::task::Task;
use wfa_algorithms::set_agreement::{SetAgreementC, SetAgreementS};

fn main() {
    let n = 4; // C-processes (= S-processes)
    let k = 2; // agreement bound: at most 2 distinct decisions
    let seed = 7;

    // --- the task, the failure pattern, and a sampled →Ωk history ---------
    let task = SetAgreement::new(n, k);
    let pattern = FailurePattern::with_crashes(n, &[(0, 40), (3, 120)]);
    println!("task     : {}", task.name());
    println!("pattern  : {pattern}");
    let fd = FdGen::vector_omega_k(pattern, k, 200, seed);
    println!("detector : {} (stabilizes by t={})", fd.name(), fd.stabilization());

    // --- assemble the EFD system ------------------------------------------
    let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
    let c_procs: Vec<Box<dyn DynProcess>> = inputs
        .iter()
        .enumerate()
        .map(|(i, v)| Box::new(SetAgreementC::new(i, k as u32, v.clone())) as Box<dyn DynProcess>)
        .collect();
    let s_procs: Vec<Box<dyn DynProcess>> = (0..n)
        .map(|q| {
            Box::new(SetAgreementS::new(q as u32, n as u32, n, k as u32)) as Box<dyn DynProcess>
        })
        .collect();
    let mut run = EfdRun::new(c_procs, s_procs, fd);

    // --- adversary: C1 and C2 stop taking steps very early ----------------
    let stops = vec![(Pid(1), 25), (Pid(2), 25)];
    println!("adversary: C1 and C2 frozen from t=25 (wait-freedom test)");
    let base = run.fair_sched(seed);
    let mut sched = Starve::new(base, stops);
    let stop = run.run(&mut sched, 500_000);

    // --- results -----------------------------------------------------------
    let report = RunReport::evaluate(&run, &task, &inputs, stop);
    println!("\noutputs:");
    for (i, (inp, out)) in report.input.iter().zip(&report.output).enumerate() {
        let steps = report.c_steps[i];
        println!("  C{i}: input={inp}  output={out}  ({steps} own steps)");
    }
    report.assert_safe();
    assert!(!report.output[0].is_unit(), "C0 must decide despite frozen peers");
    assert!(!report.output[3].is_unit(), "C3 must decide despite frozen peers");
    println!("\nΔ-validation: ok (≤ {k} distinct values, all proposed)");

    // --- the sampled history really was a →Ωk history ----------------------
    let w = check_vector_omega_k(run.fd.pattern(), run.fd.history(), k, 100)
        .expect("sampled history satisfies the →Ωk specification");
    println!("→Ω{k} witness: position stabilized on correct S{} after t={}", w.who, w.tau);
}
