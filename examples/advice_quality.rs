//! Advice quality vs. decision latency.
//!
//! The liveness of every EFD construction hinges on a single "eventually":
//! the advice (`→Ωk`) stabilizing on a correct S-process. This example makes
//! that dependence measurable — it sweeps the detector's stabilization time
//! and reports how many schedule slots the slowest C-process needs before
//! deciding k-set agreement, plus the wait-free constant that does *not*
//! change: the number of the C-process's own steps after the decision is
//! published.
//!
//! ```sh
//! cargo run --release --example advice_quality
//! ```

use wfa::core::harness::EfdRun;
use wfa::fd::detectors::FdGen;
use wfa::fd::pattern::FailurePattern;
use wfa::kernel::process::DynProcess;
use wfa::kernel::value::Value;
use wfa_algorithms::set_agreement::{SetAgreementC, SetAgreementS};

fn decision_time(n: usize, k: usize, stab: u64, seed: u64, adversarial: bool) -> Option<(u64, u64)> {
    let inputs: Vec<Value> = (0..n as i64).map(Value::Int).collect();
    let c: Vec<Box<dyn DynProcess>> = inputs
        .iter()
        .enumerate()
        .map(|(i, v)| Box::new(SetAgreementC::new(i, k as u32, v.clone())) as Box<dyn DynProcess>)
        .collect();
    let s: Vec<Box<dyn DynProcess>> = (0..n)
        .map(|q| Box::new(SetAgreementS::new(q as u32, n as u32, n, k as u32)) as Box<dyn DynProcess>)
        .collect();
    let fd = if adversarial {
        FdGen::vector_omega_k_adversarial(FailurePattern::failure_free(n), k, stab, seed)
    } else {
        FdGen::vector_omega_k(FailurePattern::failure_free(n), k, stab, seed)
    };
    let mut run = EfdRun::new(c, s, fd);
    let mut sched = run.fair_sched(seed ^ 0x51ab);
    let slots = run.run_until_decided(&mut sched, 3_000_000)?;
    let max_c_steps = run.roles.c_pids().iter().map(|p| run.executor.steps(*p)).max().unwrap();
    Some((slots, max_c_steps))
}

fn main() {
    let n = 4;
    let k = 2;
    let seeds = 8;
    println!("k-set agreement (n = {n}, k = {k}): latency vs. advice stabilization\n");
    println!(
        "{:>12} {:>18} {:>18} {:>16}",
        "stab time", "slots (uniform)", "slots (adv)", "max own C-steps"
    );
    println!("{}", "-".repeat(68));
    for stab in [0u64, 100, 400, 1_600, 6_400, 25_600] {
        let mut slots = Vec::new();
        let mut slots_adv = Vec::new();
        let mut steps = Vec::new();
        for seed in 0..seeds {
            if let Some((clock, c_steps)) = decision_time(n, k, stab, seed, false) {
                slots.push(clock);
                steps.push(c_steps);
            }
            if let Some((clock, _)) = decision_time(n, k, stab, seed, true) {
                slots_adv.push(clock);
            }
        }
        let avg = |v: &[u64]| v.iter().sum::<u64>() / v.len().max(1) as u64;
        println!("{:>12} {:>18} {:>18} {:>16}", stab, avg(&slots), avg(&slots_adv), avg(&steps));
    }
    println!("\nShape check: latency grows with the stabilization time, then");
    println!("plateaus — decisions often land *before* stabilization because");
    println!("ballot agents persist across leadership changes: even advice that");
    println!("rotates on every query (the adversarial column) cannot starve the");
    println!("system, since interrupted leaders resume their ballots when any");
    println!("position returns to them. Each C-process's own work stays small —");
    println!("wait-freedom means late advice costs a C-process only polling.");
}
